package oram

import (
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"stringoram/internal/invariant"
	"stringoram/internal/obs"
)

// Pipeline is the concurrent ORAM controller: it keeps up to Depth
// logical accesses in flight on one Ring, overlapping their data
// movement (store I/O, AES open/seal, XOR folding) on worker goroutines
// while preserving bit-identical protocol behaviour.
//
// The split follows the metadata/data separation the Ring protocol
// already has: every protocol decision — position-map lookups, RNG
// draws, bucket metadata, stash membership, the emitted op list — is a
// pure function of the access sequence and never of block contents. So
// Submit runs the full protocol pass (admission) serially on the caller
// goroutine, byte-for-byte identical to serial execution, and defers
// only the data movement into a per-slot job executed by workers.
//
// Safety comes from a bucket-granular conflict ledger. Admission records
// which buckets each job reads and writes; a job whose claims overlap an
// older in-flight job's writes (or whose writes overlap its reads) parks
// on that job's completion before executing, so store slots are always
// read and written in serial order. Blocks whose plaintext is still in
// flight (fetched by an earlier job that has not completed) are handled
// by a pending-block table: a consumer either copies from the producer's
// output buffer after its completion, or takes the buffer over entirely.
// Sealed bytes stay bit-identical because write counters are reserved at
// admission in serial order and each job seals under its reserved
// counters.
//
// Slots retire strictly in admission order on the controller goroutine:
// retirement delivers fetched plaintext into the stash, invokes the Done
// callback, and recycles buffers whose last possible reader has retired.
// One Ring has at most one Pipeline attached; while attached, the Ring
// must not be used directly until Close (which drains and detaches).
type Pipeline struct {
	ring   *Ring
	store  *lockedStore
	crypt  *Crypt
	depth  int
	doneFn func(ctx any, data []byte, ops []Op, err error) `oramlint:"scratch"`
	ins    PipelineInstruments

	slots []*pipeSlot
	// head is the seq of the oldest in-flight slot, next the seq the
	// next admission gets. Seqs start at 1 so 0 means "no dependency";
	// slot for seq s is slots[s%depth].
	head, next uint64

	// pending maps a block whose plaintext is still being produced by an
	// in-flight job to its producer's output buffer. Keys are secret
	// block IDs; all lookups steer only stash data-plumbing, never the
	// bus-visible schedule (admission emitted the ops already).
	pending map[BlockID]pendRef `oramlint:"secret"`

	// recycleQ holds buffers that may still be read by in-flight jobs;
	// entry i returns to the pool once every slot admitted at or before
	// release has retired. FIFO because release values are appended in
	// nondecreasing order.
	recycleQ    []deferBuf `oramlint:"scratch"`
	recycleHead int

	work      chan *pipeSlot `oramlint:"scratch"`
	mu        sync.Mutex
	cond      *sync.Cond
	completed []uint64 // per slot index: seq of its last completed job
	wg        sync.WaitGroup
	closed    bool

	// zero is a read-only zero block for plaintext-mode dummy writes.
	zero []byte

	// parkedN/unparkedN drive the every-parked-job-unparks watchdog
	// (asserted at Drain under -tags=invariants). unparkedN is guarded
	// by mu; parkedN is controller-only.
	parkedN   uint64
	unparkedN uint64

	// cur is the slot being admitted; pipePlane methods route to it.
	cur *pipeSlot

	// inline marks a depth-1 pipeline: only one access can ever be in
	// flight, so the conflict ledger, job recording and worker handoff
	// are pure overhead — the Ring keeps its serial data plane and
	// Submit completes each access inline on the caller goroutine.
	inline bool

	// pool/poolQ are set when the pipeline shares a WorkerPool instead
	// of owning workers (see pool.go).
	pool  *WorkerPool
	poolQ *poolQueue
}

// pendRef locates an in-flight job's output buffer.
type pendRef struct {
	slot int32
	out  int32
}

// deferBuf is one deferred-recycle entry.
type deferBuf struct {
	release uint64
	buf     []byte `oramlint:"secret,scratch"`
}

// Job op kinds. Each op is recorded at admission and executed verbatim
// on a worker; none of them makes a protocol decision.
const (
	jobOpen       uint8 = iota // store read, open into outs[out].buf
	jobXORReset                // clear the XOR accumulator
	jobXORFold                 // fold one slot's ciphertext into the accumulator
	jobXORFinish               // decode the accumulator into outs[out].buf
	jobSeal                    // seal plaintext under the reserved counter, write slot
	jobSealDummy               // deterministic dummy ciphertext, write slot
	jobWritePlain              // plaintext-mode write (no Crypt)
	jobCopy                    // treetop cache read: copy src into outs[out].buf
	jobCacheStore              // treetop cache write: copy plaintext into dst
)

// pipeJob is one recorded data-movement op.
type pipeJob struct {
	kind    uint8
	isDummy bool
	slot    int32
	epoch   int32
	out     int32 // outs index: destination for opens, source for seals (-1: use src)
	bucket  int64
	ctr     uint64 // reserved seal counter (jobSeal)
	src     []byte `oramlint:"secret,scratch"` // external plaintext source (forwarded buffers, cache slots)
	dst     []byte `oramlint:"secret,scratch"` // treetop cache destination (jobCacheStore)
}

// pipeOut is one buffer a job produces. stashPut marks buffers that
// retire into the stash entry of id (maintained in lockstep with the
// pending table: stashPut is true iff pending[id] still points here).
type pipeOut struct {
	id       BlockID `oramlint:"secret"`
	buf      []byte  `oramlint:"secret,scratch"`
	stashPut bool
}

// pipeSlot is one in-flight access: its recorded job, claims,
// dependencies, response buffer and all per-slot worker scratch. The
// fixed ring of slots is the pipeline's zero-alloc backbone — every
// slice here is reset by reslicing and regrows only to its steady-state
// high-water mark.
type pipeSlot struct {
	idx   int
	seq   uint64
	ctx   any
	write bool
	err   error

	// tc is the access's trace context (zero: untraced). Stage spans
	// parent on tc.SpanID — the serve span minted by the submitter.
	tc obs.TraceContext

	ops  []Op      `oramlint:"scratch"`
	jobs []pipeJob `oramlint:"scratch"`
	outs []pipeOut `oramlint:"scratch"`

	// readClaims/writeClaims are the buckets this job touches, sorted at
	// dispatch. Bucket indices are public (the emitted op list names
	// them), so the conflict ledger keys on public data only.
	readClaims  []int64
	writeClaims []int64
	// depSeq[i] is the seq slot i must have completed before this job
	// may execute (0: none).
	depSeq []uint64

	outBuf   []byte `oramlint:"secret,scratch"` // response plaintext (BlockSize)
	outSrc   []byte `oramlint:"secret,scratch"` // copied into outBuf after job ops run
	outValid bool
	parked   bool

	// Worker-side scratch: a Crypt view sharing the ring cipher, the XOR
	// accumulator, and seal output buffers.
	cv       *Crypt
	xorAcc   []byte `oramlint:"scratch"`
	sealBuf  []byte `oramlint:"scratch"`
	dummyBuf []byte `oramlint:"scratch"`

	executing bool // guarded by Pipeline.mu (ledger soundness asserts)
	done      bool // guarded by Pipeline.mu
}

// PipelineOptions configures AttachPipeline.
type PipelineOptions struct {
	// Depth is the number of in-flight access slots k (default 4).
	// Depth 1 selects the inline fast path: the Ring keeps its serial
	// data plane and Submit completes each access on the caller
	// goroutine, skipping job recording, the ledger and the worker
	// handoff entirely — pipelined k=1 then costs the same as serial.
	Depth int
	// Workers is the number of data-plane worker goroutines (default
	// min(Depth, NumCPU), clamped to Depth). Ignored when Pool is set
	// or Depth is 1.
	Workers int
	// Pool shares a WorkerPool across pipelines instead of spawning
	// dedicated workers: accesses from many shards then compete for
	// every pool worker rather than capping at this pipeline's private
	// worker count.
	Pool *WorkerPool
	// Done receives each access's result at retirement, in admission
	// order, on the goroutine calling Submit/Drain. data is nil for
	// writes and errors; for reads it aliases the slot's response
	// scratch and is valid only until the slot is reused — Depth
	// admissions later — so callers that keep it must copy.
	Done func(ctx any, data []byte, ops []Op, err error)
	// Ins supplies the pipeline telemetry bundle (zero value: no-ops).
	Ins PipelineInstruments
}

// AttachPipeline puts the Ring under pipelined control and returns the
// controller. The Ring must be in functional mode (a Store attached);
// while the pipeline is attached the Ring must not be driven directly.
func AttachPipeline(r *Ring, opt PipelineOptions) (*Pipeline, error) {
	if r.store == nil {
		return nil, errors.New("oram: pipeline requires a functional Store")
	}
	if opt.Done == nil {
		return nil, errors.New("oram: pipeline requires a Done callback")
	}
	if _, serial := r.dp.(*Ring); !serial {
		return nil, errors.New("oram: ring already has a pipeline attached")
	}
	depth := opt.Depth
	if depth <= 0 {
		depth = 4
	}
	p := &Pipeline{
		ring:      r,
		store:     &lockedStore{s: r.store},
		crypt:     r.crypt,
		depth:     depth,
		doneFn:    opt.Done,
		ins:       opt.Ins,
		slots:     make([]*pipeSlot, depth),
		head:      1,
		next:      1,
		pending:   make(map[BlockID]pendRef),
		completed: make([]uint64, depth),
		zero:      make([]byte, r.cfg.BlockSize),
		inline:    depth == 1,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.slots {
		s := &pipeSlot{
			idx:    i,
			depSeq: make([]uint64, depth),
			outBuf: make([]byte, r.cfg.BlockSize),
		}
		if r.crypt != nil {
			s.cv = r.crypt.view()
			s.xorAcc = make([]byte, 0, r.crypt.sealedLen())
			s.sealBuf = make([]byte, r.crypt.sealedLen())
			s.dummyBuf = make([]byte, r.crypt.sealedLen())
		}
		p.slots[i] = s
	}
	// Writer seqs from a previously attached pipeline use a different
	// numbering; clear them so they cannot read as in-flight.
	r.tt.resetSeqs()
	if p.inline {
		// Depth 1: the Ring keeps its serial data plane (inlinePlane
		// delegates every call) and Submit completes accesses inline.
		r.dp = inlinePlane{r}
	} else {
		r.dp = pipePlane{p}
	}
	switch {
	case p.inline:
		// Depth 1: no workers; Submit runs the whole access itself.
	case opt.Pool != nil:
		p.pool = opt.Pool
		p.poolQ = opt.Pool.register(p)
	default:
		workers := opt.Workers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		if workers > depth {
			workers = depth
		}
		p.work = make(chan *pipeSlot, depth)
		p.wg.Add(workers)
		for i := 0; i < workers; i++ {
			go p.worker() //oramlint:allow gostmt workers only execute data jobs pre-recorded by the serial admission pass; every protocol decision (and all RNG consumption) stays on the controller goroutine in deterministic order
		}
	}
	return p, nil
}

// Depth returns the configured number of in-flight slots.
func (p *Pipeline) Depth() int { return p.depth }

// InFlight returns the number of accesses currently in flight.
func (p *Pipeline) InFlight() int { return int(p.next - p.head) }

// Submit admits one logical access (a read when write is false, a write
// of data otherwise) and returns once it is in flight, retiring the
// oldest access first when all slots are busy. Results are delivered to
// the Done callback in admission order. Update-style read-modify-writes
// are not supported through the pipeline.
func (p *Pipeline) Submit(ctx any, id BlockID, write bool, data []byte) error {
	return p.SubmitTraced(ctx, id, write, data, obs.TraceContext{})
}

// SubmitTraced is Submit with a trace context attached: when tc is
// valid (a sampled request), each pipeline stage the access crosses
// emits a span into Ins.Tracer, parented on tc.SpanID. A zero tc is
// exactly Submit — no span work, no allocations.
func (p *Pipeline) SubmitTraced(ctx any, id BlockID, write bool, data []byte, tc obs.TraceContext) error {
	if p.closed {
		return errors.New("oram: pipeline is closed")
	}
	if p.inline {
		// Depth 1: only one access can ever be in flight, so pipelining
		// buys nothing — run the access straight through the Ring's
		// serial data plane, skipping job recording, claims, the outs
		// and pending tables, and the retirement handshake entirely.
		t0 := p.now()
		out, ops, err := p.ring.access(id, write, data, nil, nil)
		if write {
			out = nil
		}
		if invariant.Enabled {
			invariant.Assertf(err != nil || p.ring.stash.Len() <= p.ring.stash.Cap(),
				"pipeline inline access left stash at %d over capacity %d", p.ring.stash.Len(), p.ring.stash.Cap())
		}
		p.ins.Admitted.Inc()
		if t0 != 0 {
			p.ins.AdmitUs.Observe(float64(p.now() - t0))
		}
		p.emitSpan(tc, obs.SpanAdmit, t0)
		p.doneFn(ctx, out, ops, err)
		return nil
	}
	if p.next-p.head == uint64(p.depth) {
		p.retireOne()
	}
	t0 := p.now()
	s := p.slots[p.next%uint64(p.depth)]
	s.reset(p.next, ctx, write)
	s.tc = tc

	// Admission: the full serial protocol pass. Data movement lands in
	// s.jobs/s.outs via pipePlane; the op list is built directly into
	// the slot's own storage so it survives until retirement.
	p.cur = s
	savedOps := p.ring.scr.ops
	p.ring.scr.ops = s.ops[:0]
	_, _, err := p.ring.access(id, write, data, nil, nil)
	s.ops = p.ring.scr.ops
	p.ring.scr.ops = savedOps
	p.cur = nil
	s.err = err

	if invariant.Enabled {
		// Stage boundary: admission must leave the stash within its
		// bound (the background evictor runs inside the admission pass).
		invariant.Assertf(s.err != nil || p.ring.stash.Len() <= p.ring.stash.Cap(),
			"pipeline admission left stash at %d over capacity %d", p.ring.stash.Len(), p.ring.stash.Cap())
	}
	p.computeDeps(s)
	p.next++
	if s.parked {
		p.parkedN++
		p.ins.Parked.Inc()
		p.ins.Recorder.Emit(obs.Event{TS: p.now(), Kind: obs.EvPipelinePark,
			Track: int32(s.idx), Arg0: int64(s.idx), Arg1: int64(p.next - p.head)})
	}
	p.ins.Admitted.Inc()
	p.ins.InFlight.Set(int64(p.next - p.head))
	if t0 != 0 {
		p.ins.AdmitUs.Observe(float64(p.now() - t0))
	}
	p.emitSpan(tc, obs.SpanAdmit, t0)
	p.ins.Recorder.Emit(obs.Event{TS: p.now(), Kind: obs.EvPipelineAdmit,
		Track: int32(s.idx), Arg0: int64(p.next - p.head), Arg1: int64(len(s.jobs))})
	if p.pool != nil {
		p.pool.submit(p.poolQ, s)
	} else {
		p.work <- s
	}
	return nil
}

// Drain retires every in-flight access, delivering all outstanding Done
// callbacks. On return the Ring's state (stash, tree, store, counters)
// is bit-identical to serial execution of the same access sequence.
func (p *Pipeline) Drain() {
	for p.head < p.next {
		p.retireOne()
	}
	if invariant.Enabled {
		p.mu.Lock()
		unparked := p.unparkedN
		p.mu.Unlock()
		// Watchdog: every parked job must have unparked — a stuck
		// dependency would have deadlocked retirement above first, but
		// the counter pair also catches accounting drift.
		invariant.Assertf(p.parkedN == unparked, "pipeline parked %d jobs but unparked %d", p.parkedN, unparked)
		// The data plane is quiescent now: the treetop cache must agree
		// with a fresh decryption of the store.
		p.ring.verifyTreetop()
	}
}

// Close drains the pipeline, stops the workers and detaches from the
// Ring, which returns to serial operation. Close is idempotent.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.Drain()
	p.closed = true
	switch {
	case p.inline:
		// No workers to stop.
	case p.pool != nil:
		p.pool.unregister(p)
	default:
		close(p.work)
		p.wg.Wait()
	}
	p.ring.tt.resetSeqs()
	p.ring.dp = p.ring
}

// reset prepares a slot for a new admission.
func (s *pipeSlot) reset(seq uint64, ctx any, write bool) {
	s.seq = seq
	s.ctx = ctx
	s.write = write
	s.err = nil
	s.jobs = s.jobs[:0]
	s.outs = s.outs[:0]
	s.readClaims = s.readClaims[:0]
	s.writeClaims = s.writeClaims[:0]
	clear(s.depSeq)
	s.outSrc = nil
	s.outValid = false
	s.parked = false
	s.done = false
	s.tc = obs.TraceContext{}
}

// depend parks s on o's completion (no-op on self).
func (s *pipeSlot) depend(o *pipeSlot) {
	if o == s {
		return
	}
	if o.seq > s.depSeq[o.idx] {
		s.depSeq[o.idx] = o.seq
	}
	s.parked = true
}

// addOut allocates one output buffer for the admitting job and returns
// its index. Buffers come from the ring's block pool and return to it
// through the deferred-recycle queue at retirement.
func (p *Pipeline) addOut(s *pipeSlot, id BlockID, stashPut bool) int32 {
	i := int32(len(s.outs))
	s.outs = append(s.outs, pipeOut{id: id, buf: p.ring.getBlockBuf(), stashPut: stashPut})
	return i
}

// claim records a bucket in a sorted-later claim list, deduplicating.
func claim(list *[]int64, bucket int64) {
	if !slices.Contains(*list, bucket) {
		*list = append(*list, bucket)
	}
}

// computeDeps sorts the slot's claims and parks it on every older
// in-flight job whose data-movement order matters: write-after-write,
// write-after-read and read-after-write on any shared bucket. Claims are
// bucket indices from the emitted op list — public data — so the ledger
// never branches on secrets.
func (p *Pipeline) computeDeps(s *pipeSlot) {
	slices.Sort(s.readClaims)
	slices.Sort(s.writeClaims)
	for seq := p.head; seq < s.seq; seq++ {
		o := p.slots[seq%uint64(p.depth)]
		if intersects(s.writeClaims, o.writeClaims) ||
			intersects(s.writeClaims, o.readClaims) ||
			intersects(s.readClaims, o.writeClaims) {
			s.depend(o)
			p.ins.Conflicts.Inc()
		}
	}
	if invariant.Enabled {
		// Ledger soundness: any older in-flight job sharing a bucket
		// with this job's writes must now be a recorded dependency.
		for seq := p.head; seq < s.seq; seq++ {
			o := p.slots[seq%uint64(p.depth)]
			if intersects(s.writeClaims, o.writeClaims) || intersects(s.writeClaims, o.readClaims) || intersects(s.readClaims, o.writeClaims) {
				invariant.Assertf(s.depSeq[o.idx] >= o.seq,
					"pipeline slot %d (seq %d) conflicts with slot %d (seq %d) but has no dependency on it", s.idx, s.seq, o.idx, o.seq)
			}
		}
	}
}

// intersects reports whether two ascending-sorted bucket lists share an
// element.
func intersects(a, b []int64) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// retireOne retires the oldest in-flight slot: waits for its job,
// delivers fetched plaintext into the stash, invokes Done, and recycles
// buffers whose last possible reader has now retired.
func (p *Pipeline) retireOne() {
	s := p.slots[p.head%uint64(p.depth)]
	p.mu.Lock()
	for !s.done {
		p.cond.Wait()
	}
	p.mu.Unlock()
	t0 := p.now()

	for i := range s.outs {
		o := &s.outs[i]
		if o.stashPut {
			if invariant.Enabled {
				pr, ok := p.pending[o.id]
				invariant.Assertf(ok && pr.slot == int32(s.idx) && pr.out == int32(i),
					"pipeline retire: stale pending ref for block %d", o.id)
			}
			delete(p.pending, o.id)
			if e, ok := p.ring.stash.entries[o.id]; ok && e.data == nil {
				// Hand the buffer to the stash: the fetch completes here,
				// exactly as the serial plane's stash.Put did inline.
				e.data = o.buf
				p.ring.stash.entries[o.id] = e
				o.buf = nil
			}
		}
		if o.buf != nil {
			p.deferRecycle(o.buf, p.next-1)
			o.buf = nil
		}
		o.id = InvalidBlock
	}

	var data []byte
	if s.err == nil && s.outValid {
		data = s.outBuf
	}
	p.doneFn(s.ctx, data, s.ops, s.err)
	p.head++
	p.drainRecycle()
	if invariant.Enabled {
		invariant.Assertf(p.ring.stash.Len() <= p.ring.stash.Cap(),
			"pipeline retirement left stash at %d over capacity %d", p.ring.stash.Len(), p.ring.stash.Cap())
	}
	p.ins.InFlight.Set(int64(p.next - p.head))
	if t0 != 0 {
		p.ins.RetireUs.Observe(float64(p.now() - t0))
	}
	p.emitSpan(s.tc, obs.SpanRetire, t0)
	p.ins.Recorder.Emit(obs.Event{TS: p.now(), Kind: obs.EvPipelineRetire,
		Track: int32(s.idx), Arg0: int64(p.next - p.head), Arg1: int64(len(s.ops))})
}

// deferRecycle queues a buffer for return to the block pool once every
// slot admitted at or before release has retired. Callers pass the
// newest admitted seq (any job that could alias the buffer captured it
// at its own admission, so none younger can hold it).
func (p *Pipeline) deferRecycle(buf []byte, release uint64) {
	if buf == nil {
		return
	}
	p.recycleQ = append(p.recycleQ, deferBuf{release: release, buf: buf})
}

// drainRecycle returns every queued buffer whose release seq has
// retired to the block pool.
func (p *Pipeline) drainRecycle() {
	retired := p.head - 1
	for p.recycleHead < len(p.recycleQ) && p.recycleQ[p.recycleHead].release <= retired {
		p.ring.putBlockBuf(p.recycleQ[p.recycleHead].buf)
		p.recycleQ[p.recycleHead].buf = nil
		p.recycleHead++
	}
	if p.recycleHead == len(p.recycleQ) {
		p.recycleQ = p.recycleQ[:0]
		p.recycleHead = 0
	}
}

// now returns the instrumentation clock, or 0 when none is attached.
func (p *Pipeline) now() int64 {
	if p.ins.Clock != nil {
		return p.ins.Clock()
	}
	return 0
}

// emitSpan records one leaf stage span for a traced access: trace from
// tc, parented on the submitter's serve span, spanning t0..now in the
// instrumentation clock's domain. Untraced accesses (zero tc) and
// clockless pipelines (t0 == 0) skip it entirely; Emit itself never
// allocates, so the traced hot path stays allocation-free too.
func (p *Pipeline) emitSpan(tc obs.TraceContext, kind obs.SpanKind, t0 int64) {
	if t0 == 0 || !tc.Valid() {
		return
	}
	p.ins.Tracer.Emit(obs.Span{Hi: tc.Hi, Lo: tc.Lo, Parent: tc.SpanID,
		TS: t0, Dur: p.now() - t0, Kind: kind, Track: p.ins.Track})
}

// worker pulls dispatched slots off the queue, parks until their
// dependencies complete, executes their job ops, and signals completion.
func (p *Pipeline) worker() {
	defer p.wg.Done()
	for s := range p.work {
		p.runSlot(s)
	}
}

// runSlot executes one dispatched slot end to end: wait for its
// dependencies, run its job ops, mark it done. Called by dedicated
// workers and by shared WorkerPool workers.
func (p *Pipeline) runSlot(s *pipeSlot) {
	p.waitDeps(s)
	p.beginExec(s)
	p.execute(s)
	p.mu.Lock()
	s.executing = false
	s.done = true
	p.completed[s.idx] = s.seq
	p.mu.Unlock()
	p.cond.Broadcast()
}

// waitDeps blocks until every dependency recorded for s has completed.
// Dependencies always point at earlier-admitted jobs, which are
// dispatched earlier, so the wait graph is acyclic and deadlock-free for
// any worker count.
func (p *Pipeline) waitDeps(s *pipeSlot) {
	t0 := p.now()
	waited := false
	p.mu.Lock()
	for i, want := range s.depSeq {
		if want == 0 {
			continue
		}
		for p.completed[i] < want {
			waited = true
			p.cond.Wait()
		}
	}
	if s.parked {
		p.unparkedN++
	}
	p.mu.Unlock()
	if waited && t0 != 0 {
		p.ins.WaitUs.Observe(float64(p.now() - t0))
		p.emitSpan(s.tc, obs.SpanWait, t0)
	}
}

// beginExec marks the slot executing and, under -tags=invariants,
// asserts the conflict ledger kept every pair of concurrently executing
// jobs bucket-disjoint on writes.
func (p *Pipeline) beginExec(s *pipeSlot) {
	p.mu.Lock()
	if invariant.Enabled {
		for _, o := range p.slots {
			if o == s || !o.executing {
				continue
			}
			invariant.Assertf(!intersects(s.writeClaims, o.writeClaims),
				"pipeline slots %d and %d executing with overlapping write buckets", s.idx, o.idx)
			invariant.Assertf(!intersects(s.writeClaims, o.readClaims) && !intersects(s.readClaims, o.writeClaims),
				"pipeline slots %d and %d executing with a read/write bucket overlap", s.idx, o.idx)
		}
	}
	s.executing = true
	p.mu.Unlock()
}

// execute runs the slot's recorded job ops in order. Everything here is
// pure data movement against pre-admitted metadata: store I/O on claimed
// buckets, AES open/seal under reserved counters, XOR folding.
func (p *Pipeline) execute(s *pipeSlot) {
	t0 := p.now()
	for i := range s.jobs {
		j := &s.jobs[i]
		switch j.kind {
		case jobOpen:
			dst := s.outs[j.out].buf
			sealed := p.store.ReadSlot(j.bucket, int(j.slot))
			if sealed == nil {
				clear(dst)
			} else if s.cv != nil {
				if _, err := s.cv.OpenInto(dst, sealed); err != nil {
					panic(err) // corrupt store contents; unreachable with MemStore
				}
			} else {
				copy(dst, sealed)
			}
		case jobXORReset:
			s.xorAcc = s.xorAcc[:0]
		case jobXORFold:
			sealed := p.store.ReadSlot(j.bucket, int(j.slot))
			if sealed == nil {
				continue // never-written slot: contributes nothing
			}
			if len(s.xorAcc) == 0 {
				s.xorAcc = append(s.xorAcc, sealed...)
			} else {
				XORBlocks(s.xorAcc, sealed)
			}
			if j.isDummy {
				s.dummyBuf = s.cv.SealDummyInto(s.dummyBuf, j.bucket, int(j.slot), int(j.epoch))
				XORBlocks(s.xorAcc, s.dummyBuf)
			}
		case jobXORFinish:
			if _, err := s.cv.OpenInto(s.outs[j.out].buf, s.xorAcc); err != nil {
				panic(fmt.Sprintf("oram: pipelined XOR decode: %v", err))
			}
		case jobSeal:
			src := j.src
			if j.out >= 0 {
				src = s.outs[j.out].buf
			}
			s.sealBuf = s.cv.sealWith(s.sealBuf, j.ctr, src)
			p.store.WriteSlot(j.bucket, int(j.slot), s.sealBuf)
		case jobSealDummy:
			s.dummyBuf = s.cv.SealDummyInto(s.dummyBuf, j.bucket, int(j.slot), int(j.epoch))
			p.store.WriteSlot(j.bucket, int(j.slot), s.dummyBuf)
		case jobWritePlain:
			src := j.src
			if j.out >= 0 {
				src = s.outs[j.out].buf
			}
			if src == nil {
				src = p.zero
			}
			p.store.WriteSlot(j.bucket, int(j.slot), src)
		case jobCopy:
			// Treetop read whose producer was in flight at admission: the
			// dependency recorded on the writer slot has completed, so its
			// cache buffer is final.
			dst := s.outs[j.out].buf
			if j.src == nil {
				clear(dst)
			} else {
				copy(dst, j.src)
			}
		case jobCacheStore:
			// Treetop write: land the plaintext in the cache buffer the
			// admission pass installed. No store I/O, no AES — the flush
			// seals it later under the counter reserved at admission.
			src := j.src
			if j.out >= 0 {
				src = s.outs[j.out].buf
			}
			if src == nil {
				src = p.zero
			}
			copy(j.dst, src)
		}
		j.src = nil
		j.dst = nil
	}
	// Response epilogue: the snapshot source resolved to an in-flight
	// buffer (our own fetch or a completed producer's); copy it now that
	// the producing ops have run.
	if s.outSrc != nil {
		copy(s.outBuf, s.outSrc)
		s.outSrc = nil
	}
	if t0 != 0 {
		p.ins.ExecUs.Observe(float64(p.now() - t0))
		p.emitSpan(s.tc, obs.SpanExec, t0)
	}
}

// --- inlinePlane: the depth-1 marker plane ---

// inlinePlane marks a depth-1 pipeline attachment. It embeds the Ring
// so every dataPlane call delegates straight to the serial
// implementations — data moves inline with zero pipelining overhead —
// while its distinct type keeps the attachment guards honest: the
// `r.dp.(*Ring)` checks (double attach, Update, EnableTreetop, the
// per-access treetop verifier) all see the ring as attached.
type inlinePlane struct{ *Ring }

// --- pipePlane: the dataPlane that records instead of moving ---

// pipePlane implements dataPlane during pipelined admission: each call
// appends job ops and bucket claims to the admitting slot instead of
// touching the store. Stash/metadata mutations mirror the serial plane
// exactly so the protocol pass stays bit-identical.
type pipePlane struct{ p *Pipeline }

func (pp pipePlane) fetchToStash(bucket int64, slot int, id BlockID, path PathID) {
	p, s := pp.p, pp.p.cur
	// Treetop elision: every access's path crosses every cached level
	// and the op trace already excludes them; serving the read from
	// controller memory instead of recording a store job changes nothing
	// bus-visible, and the branch keys on the public bucket index.
	if tt := p.ring.tt; tt.cached(bucket) {
		i := tt.index(bucket, slot)
		if w := tt.writerSeq[i]; w >= p.head && w > 0 {
			// The producing write is still in flight: its cache buffer
			// fills on a worker. Copy it after the writer completes,
			// through the same pending-block machinery a store fetch
			// uses. Cached buckets take no ledger claims — the
			// controller-local copy can never conflict on the store —
			// but the data dependency on the writer slot remains.
			out := p.addOut(s, id, true)
			s.jobs = append(s.jobs, pipeJob{kind: jobCopy, out: out, src: tt.buf[i]})
			s.depend(p.slots[w%uint64(p.depth)])
			p.ins.PendingForwards.Inc()
			p.ring.stash.Put(id, path, nil)
			p.pending[id] = pendRef{slot: int32(s.idx), out: out}
			return
		}
		// Settled: serve from controller memory at admission, exactly as
		// the serial plane does.
		p.ring.ttFetchSerial(bucket, slot, id, path)
		return
	}
	claim(&s.readClaims, bucket)
	out := p.addOut(s, id, true)
	s.jobs = append(s.jobs, pipeJob{kind: jobOpen, bucket: bucket, slot: int32(slot), out: out})
	// The stash entry materializes now (metadata, serial-identical); its
	// data arrives when this slot retires. Until then the block is
	// pending: consumers forward from the producing buffer.
	p.ring.stash.Put(id, path, nil)
	p.pending[id] = pendRef{slot: int32(s.idx), out: out}
}

func (pp pipePlane) xorReset() {
	s := pp.p.cur
	s.jobs = append(s.jobs, pipeJob{kind: jobXORReset})
}

func (pp pipePlane) xorFoldSlot(bucket int64, slot int, isDummy bool, epoch int) {
	p, s := pp.p, pp.p.cur
	p.ring.ttAssertUncached(bucket, "xorFoldSlot") // XOR folding starts at emitFrom
	claim(&s.readClaims, bucket)
	s.jobs = append(s.jobs, pipeJob{kind: jobXORFold, bucket: bucket, slot: int32(slot), isDummy: isDummy, epoch: int32(epoch)})
}

func (pp pipePlane) xorFinishToStash(id BlockID, path PathID) {
	p, s := pp.p, pp.p.cur
	out := p.addOut(s, id, true)
	s.jobs = append(s.jobs, pipeJob{kind: jobXORFinish, out: out})
	p.ring.stash.Put(id, path, nil)
	p.pending[id] = pendRef{slot: int32(s.idx), out: out}
}

func (pp pipePlane) reshuffleFetch(bucket int64, slot int) blockRef {
	p, s := pp.p, pp.p.cur
	p.ring.ttAssertUncached(bucket, "reshuffleFetch") // early reshuffles start at emitFrom
	claim(&s.readClaims, bucket)
	out := p.addOut(s, InvalidBlock, false)
	s.jobs = append(s.jobs, pipeJob{kind: jobOpen, bucket: bucket, slot: int32(slot), out: out})
	return blockRef{tok: out}
}

func (pp pipePlane) takeStash(id BlockID) blockRef {
	p, s := pp.p, pp.p.cur
	data := p.ring.stash.Remove(id)
	if pr, ok := p.pending[id]; ok {
		delete(p.pending, id)
		prod := p.slots[pr.slot]
		prod.outs[pr.out].stashPut = false
		if prod == s {
			// Fetched earlier in this very access: the open op runs
			// before the seal op in the same job.
			//oramlint:allow secret-early-exit the pending-table hit only selects which buffer the seal op reads; the op list and claims were already emitted at admission, so the bus schedule is unchanged
			return blockRef{tok: pr.out}
		}
		// Produced by an older in-flight job: seal from its buffer once
		// it completes. The producer's retirement defers the buffer's
		// recycling past ours, so the reference stays valid.
		//oramlint:allow secret-park the forwarding stall is inherent to the conflict ledger: it serializes a consumer behind a producer whose bucket collision is already bus-visible, and only delays worker execution, never reshapes emitted ops
		s.depend(prod)
		p.ins.PendingForwards.Inc()
		return blockRef{buf: prod.outs[pr.out].buf, tok: -1}
	}
	// Resident plaintext: take the stash buffer along (recycled via the
	// outs table at retirement, after the seal has consumed it).
	out := int32(len(s.outs))
	s.outs = append(s.outs, pipeOut{id: InvalidBlock, buf: data})
	return blockRef{tok: out}
}

func (pp pipePlane) writeReal(bucket int64, slot int, src blockRef) {
	p, s := pp.p, pp.p.cur
	// Treetop elision: the eviction rewrites every slot of every path
	// bucket regardless of contents; absorbing the cached levels'
	// uniform writes into controller memory (sealed under the counter
	// reserved here at flush time) changes no bus-visible behaviour,
	// and the branch keys on the public bucket index.
	if tt := p.ring.tt; tt.cached(bucket) {
		i := tt.index(bucket, slot)
		var ctr uint64
		if p.crypt != nil {
			// Reserve the write counter now, in serial order, so the
			// flush seals the same bytes the uncached controller wrote.
			p.crypt.writeCtr++
			ctr = p.crypt.writeCtr
		}
		// Swap in a fresh buffer instead of mutating in place: older
		// in-flight readers captured the previous buffer, which recycles
		// only after this slot retires.
		dst := p.ring.getBlockBuf()
		p.deferRecycle(tt.buf[i], s.seq)
		tt.buf[i] = dst
		tt.ctr[i] = ctr
		tt.state[i] = ttReal
		tt.writerSeq[i] = s.seq
		s.jobs = append(s.jobs, pipeJob{kind: jobCacheStore, out: src.tok, src: src.buf, dst: dst})
		return
	}
	claim(&s.writeClaims, bucket)
	if p.crypt != nil {
		// Reserve the write counter now, in serial order: the sealed
		// bytes become independent of job scheduling.
		p.crypt.writeCtr++
		s.jobs = append(s.jobs, pipeJob{kind: jobSeal, bucket: bucket, slot: int32(slot), ctr: p.crypt.writeCtr, out: src.tok, src: src.buf})
	} else {
		s.jobs = append(s.jobs, pipeJob{kind: jobWritePlain, bucket: bucket, slot: int32(slot), out: src.tok, src: src.buf})
	}
}

func (pp pipePlane) writeDummy(bucket int64, slot int, epoch int) {
	p, s := pp.p, pp.p.cur
	if tt := p.ring.tt; tt.cached(bucket) {
		// Pure metadata: the dummy ciphertext is deterministic from
		// (bucket, slot, epoch) and regenerates at flush time.
		i := tt.index(bucket, slot)
		p.deferRecycle(tt.buf[i], s.seq)
		tt.buf[i] = nil
		tt.state[i] = ttDummy
		tt.epoch[i] = int32(epoch)
		tt.writerSeq[i] = 0
		return
	}
	claim(&s.writeClaims, bucket)
	if p.crypt != nil {
		s.jobs = append(s.jobs, pipeJob{kind: jobSealDummy, bucket: bucket, slot: int32(slot), epoch: int32(epoch)})
	} else {
		s.jobs = append(s.jobs, pipeJob{kind: jobWritePlain, bucket: bucket, slot: int32(slot), out: -1})
	}
}

func (pp pipePlane) releaseRef(blockRef) {
	// Buffer lifetimes are managed by the outs table and the
	// deferred-recycle queue; nothing to do at the call site.
}

func (pp pipePlane) stashStore(id BlockID, path PathID, data []byte) {
	p, s := pp.p, pp.p.cur
	buf := p.ring.getBlockBuf()
	copy(buf, data)
	displaced := p.ring.stash.Put(id, path, buf)
	if pr, ok := p.pending[id]; ok {
		// Overwrite of a still-pending block: the in-flight fetch result
		// is dead on arrival. The producer's retirement recycles its
		// buffer instead of delivering it.
		delete(p.pending, id)
		p.slots[pr.slot].outs[pr.out].stashPut = false
	}
	// The displaced buffer may still be a snapshot or forwarding source
	// for in-flight jobs (up to and including the one admitting now).
	p.deferRecycle(displaced, s.seq)
}

func (pp pipePlane) snapshotOut(id BlockID) []byte {
	p, s := pp.p, pp.p.cur
	s.outValid = true
	if pr, ok := p.pending[id]; ok {
		prod := p.slots[pr.slot]
		s.outSrc = prod.outs[pr.out].buf
		if prod != s {
			//oramlint:allow secret-park response-snapshot forwarding parks behind the same producer the conflict ledger already serializes on; the stall shifts worker timing only, the admission-emitted op schedule is fixed
			s.depend(prod)
			p.ins.PendingForwards.Inc()
		}
		return nil
	}
	if cur := p.ring.stash.Get(id); cur == nil {
		clear(s.outBuf)
	} else {
		copy(s.outBuf, cur)
	}
	return nil
}

// --- lockedStore: store access shared by the workers ---

// lockedStore serializes map-level mutation of the underlying Store
// (MemStore materializes buckets lazily) while letting reads run
// concurrently. Slot-level read/write races are excluded by the conflict
// ledger — a returned read slice is safe to use after RUnlock because no
// in-flight job may write a bucket another is reading.
type lockedStore struct {
	mu sync.RWMutex
	s  Store
}

func (l *lockedStore) ReadSlot(bucket int64, slot int) []byte {
	l.mu.RLock()
	sealed := l.s.ReadSlot(bucket, slot)
	l.mu.RUnlock()
	return sealed
}

func (l *lockedStore) WriteSlot(bucket int64, slot int, sealed []byte) {
	l.mu.Lock()
	l.s.WriteSlot(bucket, slot, sealed)
	l.mu.Unlock()
}
