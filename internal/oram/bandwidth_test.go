package oram

import (
	"testing"

	"stringoram/internal/config"
)

// TestRingVsPathOverallBandwidth checks the paper's introductory claim:
// Ring ORAM (with the XOR technique) reduces overall bandwidth by roughly
// 2.3x-4x versus Path ORAM (Z=4) across the bandwidth-optimal configs.
func TestRingVsPathOverallBandwidth(t *testing.T) {
	path := PathBandwidth(4, 24)
	for _, rc := range config.Fig4Configs() {
		o := config.ORAMForRing(rc)
		o.TreeTopCacheLevels = 0 // pure-protocol comparison
		ring := RingBandwidth(o, true)
		ratio := path.Overall / ring.Overall
		if ratio < 1.4 || ratio > 5 {
			t.Errorf("%s: overall ratio Path/Ring = %.2f, expected ~2.3-4x territory", rc.Name, ratio)
		}
		t.Logf("%s: Ring overall %.1f blocks/access, Path %.1f, ratio %.2fx", rc.Name, ring.Overall, path.Overall, ratio)
	}
}

// TestRingOnlineBandwidthWithXOR checks the >60x online claim: the XOR
// technique returns a single block per read path while Path ORAM's online
// phase moves Z*(L+1) blocks.
func TestRingOnlineBandwidthWithXOR(t *testing.T) {
	path := PathBandwidth(4, 24)
	ring := RingBandwidth(config.ORAMForRing(config.Fig4Configs()[0]), true)
	if ring.Online != 1 {
		t.Fatalf("XOR online = %.1f blocks, want 1", ring.Online)
	}
	if ratio := path.Online / ring.Online; ratio < 60 {
		t.Fatalf("online ratio = %.1fx, want > 60x", ratio)
	}
}

func TestRingBandwidthWithoutXOR(t *testing.T) {
	o := config.ORAMForRing(config.Fig4Configs()[1])
	bw := RingBandwidth(o, false)
	if bw.Online != float64(o.Levels) {
		t.Fatalf("online without XOR = %.1f, want %d", bw.Online, o.Levels)
	}
	if bw.Overall <= bw.Online {
		t.Fatal("overall must exceed online (evictions cost bandwidth)")
	}
}

// TestMeasuredBandwidthMatchesAnalytic runs a real Ring instance and
// compares its measured per-access block traffic to the analytic model.
func TestMeasuredBandwidthMatchesAnalytic(t *testing.T) {
	cfg := smallCfg(0)
	cfg.TreeTopCacheLevels = 0
	r, err := NewRing(cfg, 89, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		if _, _, err := r.Access(BlockID(i%64), false, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := MeasuredBandwidth(r.Stats())
	want := RingBandwidth(cfg, false)
	// Early reshuffles add a little on top of the analytic floor.
	if got.Overall < want.Overall*0.99 || got.Overall > want.Overall*1.3 {
		t.Fatalf("measured overall %.2f blocks/access, analytic %.2f", got.Overall, want.Overall)
	}
	if got.Online != want.Online {
		t.Fatalf("measured online %.2f, analytic %.2f", got.Online, want.Online)
	}
}

func TestMeasuredBandwidthEmptyStats(t *testing.T) {
	if bw := MeasuredBandwidth(Stats{}); bw.Online != 0 || bw.Overall != 0 {
		t.Fatalf("empty stats produced %+v", bw)
	}
}

func TestOpKindStrings(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpReadPath:       "read-path",
		OpDummyReadPath:  "dummy-read-path",
		OpEvictPath:      "evict-path",
		OpEarlyReshuffle: "early-reshuffle",
	} {
		if k.String() != want {
			t.Errorf("OpKind %d = %q, want %q", k, k.String(), want)
		}
	}
	if OpKind(99).String() == "" {
		t.Error("unknown OpKind produced empty string")
	}
}

func TestGreenPerReadPathZeroDivision(t *testing.T) {
	var s Stats
	if s.GreenPerReadPath() != 0 {
		t.Fatal("zero read paths must yield 0 green/read")
	}
}

func TestMemStore(t *testing.T) {
	m := NewMemStore(4)
	if m.ReadSlot(1, 2) != nil {
		t.Fatal("fresh store returned data")
	}
	m.WriteSlot(1, 2, []byte{9})
	if got := m.ReadSlot(1, 2); len(got) != 1 || got[0] != 9 {
		t.Fatalf("ReadSlot = %v", got)
	}
	if m.ReadSlot(1, 3) != nil {
		t.Fatal("neighbor slot has data")
	}
	if m.TouchedBuckets() != 1 || m.WrittenSlots() != 1 {
		t.Fatalf("counters: buckets=%d writes=%d", m.TouchedBuckets(), m.WrittenSlots())
	}
}
