package oram

import (
	"stringoram/internal/obs"
)

// Instruments bundles the telemetry hooks a Ring can drive. Every field
// may be nil (nil instruments are no-ops), so an uninstrumented ring —
// the zero Instruments value — pays only inlined nil checks; the warmed
// Access path stays at 0 allocs/op with all instruments live (pinned by
// TestAllocFreeInstrumentedAccess).
//
// Unlike the scheduler, rings run inside server worker goroutines that
// are scraped concurrently, so every metric here is a true atomic
// instrument — no scrape-time mirrors of the unsynchronized Stats
// struct.
type Instruments struct {
	// Stash tracks live stash occupancy in blocks; StashPeak its high
	// water mark.
	Stash     *obs.Gauge
	StashPeak *obs.Gauge

	Accesses             *obs.Counter
	StashHits            *obs.Counter
	GreenFetches         *obs.Counter
	EarlyReshuffles      *obs.Counter
	BackgroundEvictions  *obs.Counter
	BackgroundDummyReads *obs.Counter
	ReadPaths            *obs.Counter
	DummyReadPaths       *obs.Counter
	EvictPaths           *obs.Counter

	// Recorder receives typed flight-recorder events. Clock supplies
	// their timestamps and must be in a deterministic domain when the
	// ring feeds a simulator (the sim injects its cycle counter); when
	// nil, events are stamped with the ring's logical access ordinal.
	Recorder *obs.Recorder
	Clock    func() int64
}

// NewInstruments registers the ring metric families on reg and returns
// the bundle. labels, when non-empty, is a Prometheus label block (e.g.
// `shard="3"`) appended to every series so multiple rings can share one
// registry. The recorder and clock are left nil for the caller to fill.
// A nil registry yields all-nil (no-op) instruments.
func NewInstruments(reg *obs.Registry, labels string) Instruments {
	n := func(fam, extra string) string {
		lb := labels
		if extra != "" {
			if lb != "" {
				lb += "," + extra
			} else {
				lb = extra
			}
		}
		if lb == "" {
			return fam
		}
		return fam + "{" + lb + "}"
	}
	return Instruments{
		Stash:     reg.Gauge(n("oram_stash_blocks", ""), "current stash occupancy in blocks"),
		StashPeak: reg.Gauge(n("oram_stash_peak_blocks", ""), "highest stash occupancy observed"),
		Accesses:  reg.Counter(n("oram_accesses_total", ""), "ORAM accesses completed (reads and writes)"),
		StashHits: reg.Counter(n("oram_stash_hits_total", ""), "accesses served while the block sat in the stash"),
		GreenFetches: reg.Counter(n("oram_green_fetches_total", ""),
			"Compact Bucket green blocks pulled into the stash in place of dummies"),
		EarlyReshuffles: reg.Counter(n("oram_early_reshuffles_total", ""),
			"buckets reshuffled after exhausting their S dummy budget"),
		BackgroundEvictions: reg.Counter(n("oram_background_evictions_total", ""),
			"scheduled evictions issued by the background stash-drain loop"),
		BackgroundDummyReads: reg.Counter(n("oram_background_dummy_reads_total", ""),
			"dummy read paths issued by the background stash-drain loop"),
		ReadPaths:      reg.Counter(n("oram_paths_total", `kind="read"`), "real read-path operations"),
		DummyReadPaths: reg.Counter(n("oram_paths_total", `kind="dummy"`), "dummy read-path operations"),
		EvictPaths:     reg.Counter(n("oram_paths_total", `kind="evict"`), "eviction path operations"),
	}
}

// PipelineInstruments bundles the telemetry hooks a Pipeline drives.
// Like Instruments, every field may be nil (no-ops) and the zero value
// disables everything; the hot path stays allocation-free with all
// instruments live.
type PipelineInstruments struct {
	// InFlight tracks the number of accesses currently admitted and not
	// yet retired.
	InFlight *obs.Gauge

	// Admitted counts accesses entering the pipeline; Parked those that
	// entered with at least one conflict-ledger dependency; Conflicts
	// the ledger edges recorded; PendingForwards the accesses whose
	// data was forwarded from a still-in-flight producer buffer.
	Admitted        *obs.Counter
	Parked          *obs.Counter
	Conflicts       *obs.Counter
	PendingForwards *obs.Counter

	// Per-stage latency histograms, in Clock units (the server injects
	// wall microseconds, matching its flight-recorder domain). Observed
	// only when Clock is non-nil.
	AdmitUs  *obs.Histogram
	WaitUs   *obs.Histogram
	ExecUs   *obs.Histogram
	RetireUs *obs.Histogram

	// Recorder receives EvPipeline* flight-recorder events; Clock
	// supplies their timestamps (nil: events are stamped 0 and the
	// stage histograms are skipped).
	Recorder *obs.Recorder
	Clock    func() int64

	// Tracer receives per-stage spans for accesses submitted with a
	// valid trace context (SubmitTraced); Track labels them with the
	// owning lane (the server passes its shard index). Spans share
	// Clock's time domain and are skipped when Clock is nil, exactly
	// like the stage histograms. A nil Tracer is a no-op.
	Tracer *obs.TraceBuffer
	Track  int32
}

// pipelineStageBounds is the default per-stage latency bucket layout in
// microseconds: 1us to 5ms, roughly 2-5x steps around the ~12us serial
// access cost.
var pipelineStageBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000, 5000}

// NewPipelineInstruments registers the pipeline metric families on reg
// and returns the bundle. labels follows the NewInstruments convention.
// Recorder and Clock are left nil for the caller to fill. A nil registry
// yields all-nil (no-op) instruments.
func NewPipelineInstruments(reg *obs.Registry, labels string) PipelineInstruments {
	n := func(fam, extra string) string {
		lb := labels
		if extra != "" {
			if lb != "" {
				lb += "," + extra
			} else {
				lb = extra
			}
		}
		if lb == "" {
			return fam
		}
		return fam + "{" + lb + "}"
	}
	return PipelineInstruments{
		InFlight: reg.Gauge(n("oram_pipeline_inflight", ""), "accesses currently in flight in the pipeline"),
		Admitted: reg.Counter(n("oram_pipeline_admitted_total", ""), "accesses admitted into the pipeline"),
		Parked: reg.Counter(n("oram_pipeline_parked_total", ""),
			"accesses admitted with at least one conflict-ledger dependency"),
		Conflicts: reg.Counter(n("oram_pipeline_conflicts_total", ""),
			"conflict-ledger dependency edges recorded between in-flight accesses"),
		PendingForwards: reg.Counter(n("oram_pipeline_pending_forwards_total", ""),
			"accesses whose data was forwarded from a still-in-flight producer buffer"),
		AdmitUs:  reg.Histogram(n("oram_pipeline_stage_us", `stage="admit"`), "pipeline admission (serial protocol pass) latency", pipelineStageBounds),
		WaitUs:   reg.Histogram(n("oram_pipeline_stage_us", `stage="wait"`), "pipeline dependency-park latency", pipelineStageBounds),
		ExecUs:   reg.Histogram(n("oram_pipeline_stage_us", `stage="exec"`), "pipeline data-plane job execution latency", pipelineStageBounds),
		RetireUs: reg.Histogram(n("oram_pipeline_stage_us", `stage="retire"`), "pipeline retirement latency", pipelineStageBounds),
	}
}

// Instrument attaches the bundle to the ring. Call it before traffic;
// re-attaching (or attaching the zero value to disable) is allowed
// between accesses.
func (r *Ring) Instrument(in Instruments) {
	r.ins = in
}

// obsNow returns the timestamp for the ring's flight-recorder events:
// the injected clock when present, the logical access ordinal otherwise.
func (r *Ring) obsNow() int64 {
	if r.ins.Clock != nil {
		return r.ins.Clock()
	}
	return r.stats.Reads + r.stats.Writes
}
