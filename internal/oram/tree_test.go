package oram

import (
	"testing"
	"testing/quick"
)

func TestTreeCounts(t *testing.T) {
	tr := NewTree(4)
	if tr.L != 3 || tr.Levels() != 4 {
		t.Fatalf("bad levels: %+v", tr)
	}
	if tr.Buckets() != 15 {
		t.Errorf("Buckets = %d, want 15", tr.Buckets())
	}
	if tr.Leaves() != 8 {
		t.Errorf("Leaves = %d, want 8", tr.Leaves())
	}
}

func TestBucketIndexRoot(t *testing.T) {
	tr := NewTree(5)
	for p := PathID(0); p < PathID(tr.Leaves()); p++ {
		if idx := tr.BucketIndex(p, 0); idx != 0 {
			t.Fatalf("path %d level 0 -> bucket %d, want 0 (root)", p, idx)
		}
	}
}

func TestBucketIndexLeaves(t *testing.T) {
	tr := NewTree(4)
	// Leaves occupy indices 7..14 at level 3 for a 4-level tree.
	for p := PathID(0); p < 8; p++ {
		want := int64(7 + p)
		if idx := tr.BucketIndex(p, 3); idx != want {
			t.Errorf("path %d leaf index = %d, want %d", p, idx, want)
		}
	}
}

func TestPathConnectivity(t *testing.T) {
	// Each bucket on a path must be the parent of the next: heap-order
	// child indices are 2i+1 and 2i+2.
	tr := NewTree(7)
	for p := PathID(0); p < PathID(tr.Leaves()); p++ {
		path := tr.Path(p, nil)
		if len(path) != tr.Levels() {
			t.Fatalf("path length %d, want %d", len(path), tr.Levels())
		}
		for l := 1; l < len(path); l++ {
			parent := path[l-1]
			if path[l] != 2*parent+1 && path[l] != 2*parent+2 {
				t.Fatalf("path %d: bucket %d at level %d is not a child of %d", p, path[l], l, parent)
			}
		}
	}
}

func TestBucketLevelRoundTrip(t *testing.T) {
	tr := NewTree(10)
	err := quick.Check(func(raw uint16) bool {
		bucket := int64(raw) % tr.Buckets()
		level := tr.BucketLevel(bucket)
		lo := (int64(1) << uint(level)) - 1
		hi := (int64(1) << uint(level+1)) - 1
		return bucket >= lo && bucket < hi
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestOnPathMatchesPath(t *testing.T) {
	tr := NewTree(6)
	for p := PathID(0); p < PathID(tr.Leaves()); p++ {
		onPath := make(map[int64]bool)
		for _, idx := range tr.Path(p, nil) {
			onPath[idx] = true
		}
		for b := int64(0); b < tr.Buckets(); b++ {
			if tr.OnPath(b, p) != onPath[b] {
				t.Fatalf("OnPath(%d, %d) = %v, want %v", b, p, tr.OnPath(b, p), onPath[b])
			}
		}
	}
}

func TestPathThroughIsOnPath(t *testing.T) {
	tr := NewTree(8)
	for b := int64(0); b < tr.Buckets(); b++ {
		p := tr.PathThrough(b)
		if !tr.OnPath(b, p) {
			t.Fatalf("PathThrough(%d) = %d but bucket is not on that path", b, p)
		}
	}
}

func TestCommonLevel(t *testing.T) {
	tr := NewTree(4) // L = 3
	cases := []struct {
		a, b PathID
		want int
	}{
		{0, 0, 3},
		{0, 1, 2},
		{0, 2, 1},
		{0, 4, 0},
		{5, 5, 3},
		{6, 7, 2},
		{3, 4, 0},
	}
	for _, c := range cases {
		if got := tr.CommonLevel(c.a, c.b); got != c.want {
			t.Errorf("CommonLevel(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonLevelSymmetric(t *testing.T) {
	tr := NewTree(9)
	err := quick.Check(func(a, b uint16) bool {
		pa := PathID(int64(a) % tr.Leaves())
		pb := PathID(int64(b) % tr.Leaves())
		return tr.CommonLevel(pa, pb) == tr.CommonLevel(pb, pa)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommonLevelSharesBucket(t *testing.T) {
	tr := NewTree(7)
	err := quick.Check(func(a, b uint16) bool {
		pa := PathID(int64(a) % tr.Leaves())
		pb := PathID(int64(b) % tr.Leaves())
		l := tr.CommonLevel(pa, pb)
		// They share the bucket at level l...
		if tr.BucketIndex(pa, l) != tr.BucketIndex(pb, l) {
			return false
		}
		// ...and diverge below it (unless identical paths).
		if l < tr.L && tr.BucketIndex(pa, l+1) == tr.BucketIndex(pb, l+1) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEvictPathReverseLex(t *testing.T) {
	tr := NewTree(4) // L = 3, 8 leaves
	// Reverse lexicographic order over 3 bits: 0,4,2,6,1,5,3,7.
	want := []PathID{0, 4, 2, 6, 1, 5, 3, 7}
	for g := int64(0); g < 8; g++ {
		if got := tr.EvictPathFor(g); got != want[g] {
			t.Errorf("EvictPathFor(%d) = %d, want %d", g, got, want[g])
		}
	}
	// Wraps around.
	if got := tr.EvictPathFor(8); got != 0 {
		t.Errorf("EvictPathFor(8) = %d, want 0", got)
	}
}

func TestEvictPathCoversAllLeaves(t *testing.T) {
	tr := NewTree(6)
	seen := make(map[PathID]bool)
	for g := int64(0); g < tr.Leaves(); g++ {
		seen[tr.EvictPathFor(g)] = true
	}
	if int64(len(seen)) != tr.Leaves() {
		t.Fatalf("one period covered %d distinct leaves, want %d", len(seen), tr.Leaves())
	}
}

// TestEvictPathConsecutiveDivergeEarly verifies the property reverse-lex
// order exists for: consecutive eviction paths share as few buckets as
// possible (consecutive paths differ in the bit closest to the root).
func TestEvictPathConsecutiveDivergeEarly(t *testing.T) {
	tr := NewTree(8)
	for g := int64(0); g < 64; g++ {
		a := tr.EvictPathFor(g)
		b := tr.EvictPathFor(g + 1)
		if l := tr.CommonLevel(a, b); l > 3 {
			t.Errorf("evictions %d,%d share down to level %d; reverse-lex should diverge near the root", g, g+1, l)
		}
	}
}

func TestReverseBits(t *testing.T) {
	cases := []struct {
		v    uint64
		n    int
		want uint64
	}{
		{0b001, 3, 0b100},
		{0b110, 3, 0b011},
		{0b1, 1, 0b1},
		{0, 5, 0},
		{0b10110, 5, 0b01101},
	}
	for _, c := range cases {
		if got := reverseBits(c.v, c.n); got != c.want {
			t.Errorf("reverseBits(%b, %d) = %b, want %b", c.v, c.n, got, c.want)
		}
	}
}

func TestNewTreePanicsOnZeroLevels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTree(0) did not panic")
		}
	}()
	NewTree(0)
}
