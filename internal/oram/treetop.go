package oram

import (
	"bytes"
	"errors"

	"stringoram/internal/config"
	"stringoram/internal/invariant"
)

// treetopCache holds the plaintext contents of the top
// TreeTopCacheLevels levels of the tree inside the controller. The
// protocol already elides those levels from the bus-visible op trace
// (emitFrom): every access's path crosses every cached level, so per
// the standard tree-top-caching argument (Ring ORAM Sec. 8; Path ORAM
// follow-ups) skipping their uniform bus operations leaks nothing.
// This structure extends the elision from the op trace to the data
// plane: reads at cached levels are served from controller memory and
// writes land in controller memory, so cached buckets cost neither
// store I/O nor AES until the cache flushes.
//
// Flush discipline: every real write still reserves its AES-CTR write
// counter at the moment the uncached controller would have sealed, and
// every dummy write records its (bucket, slot, epoch) triple. Flushing
// re-seals under those remembered counters, so the flushed store bytes
// are bit-identical to the store of an uncached controller that ran
// the same access sequence — the property the snapshot round-trip and
// equivalence oracles pin.
//
// Slot states: a clean slot's store bytes are current (warmed or
// flushed); a dirty-real slot holds plaintext in buf awaiting a
// counter-bound seal; a dirty-dummy slot (buf nil) awaits its
// deterministic dummy ciphertext. A nil buf read as real decodes to
// the zero block, mirroring readSlotData on a never-written slot.
type treetopCache struct {
	nBuckets int64 // heap-order buckets [0, nBuckets) are cached
	slots    int   // physical slots per bucket

	buf   [][]byte `oramlint:"secret,scratch"` // plaintext per slot; nil = zero/dummy
	state []uint8  // ttClean / ttReal / ttDummy
	ctr   []uint64 // reserved seal counter for dirty-real slots
	epoch []int32  // reshuffle epoch for dirty-dummy slots

	// writerSeq is the admission seq of the in-flight pipelined job
	// producing a slot's contents; a seq below the pipeline head (or 0)
	// means the slot is settled and readable at admission. Serial
	// operation leaves it 0.
	writerSeq []uint64
}

const (
	ttClean uint8 = iota
	ttReal
	ttDummy
)

// index maps (bucket, slot) to the flat cache index.
func (tt *treetopCache) index(bucket int64, slot int) int {
	return int(bucket)*tt.slots + slot
}

// cached reports whether a bucket lives in the treetop cache. Bucket
// indices are public protocol metadata (the emitted op list names
// them), so this branch never depends on block contents.
func (tt *treetopCache) cached(bucket int64) bool {
	return tt != nil && bucket < tt.nBuckets
}

// resetSeqs clears all writer seqs; called when a pipeline attaches or
// detaches so stale seqs from a previous pipeline's numbering cannot be
// mistaken for in-flight writers.
func (tt *treetopCache) resetSeqs() {
	if tt == nil {
		return
	}
	clear(tt.writerSeq)
}

// TreetopLevelsForBudget returns the deepest tree-top cache depth whose
// plaintext footprint fits budgetBytes (at most Levels-1 so at least
// the leaf level stays store-resident). It is the sizing rule behind
// the "a few MiB per shard" default: callers pass e.g. 4<<20.
func TreetopLevelsForBudget(cfg config.ORAM, budgetBytes int64) int {
	per := int64(cfg.SlotsPerBucket()) * int64(cfg.BlockSize)
	levels := 0
	for levels < cfg.Levels-1 {
		buckets := (int64(1) << uint(levels+1)) - 1
		if buckets*per > budgetBytes {
			break
		}
		levels++
	}
	return levels
}

// EnableTreetop attaches the treetop data cache, warming it from the
// store, and returns nil if the cache is active (or a no-op because
// TreeTopCacheLevels is 0). It must be called before a Pipeline is
// attached; NewRing calls it for Options.TreetopCache, and callers of
// Load re-enable it on the restored ring.
func (r *Ring) EnableTreetop() error {
	if r.tt != nil {
		return nil
	}
	if r.store == nil {
		return errors.New("oram: treetop cache requires a functional Store")
	}
	if _, serial := r.dp.(*Ring); !serial {
		return errors.New("oram: enable the treetop cache before attaching a Pipeline")
	}
	c := r.cfg.TreeTopCacheLevels
	if c <= 0 {
		return nil
	}
	n := (int64(1) << uint(c)) - 1
	slots := r.cfg.SlotsPerBucket()
	r.tt = &treetopCache{
		nBuckets:  n,
		slots:     slots,
		buf:       make([][]byte, n*int64(slots)),
		state:     make([]uint8, n*int64(slots)),
		ctr:       make([]uint64, n*int64(slots)),
		epoch:     make([]int32, n*int64(slots)),
		writerSeq: make([]uint64, n*int64(slots)),
	}
	r.warmTreetop()
	return nil
}

// TreetopEnabled reports whether the treetop data cache is attached.
func (r *Ring) TreetopEnabled() bool { return r.tt != nil }

// warmTreetop decrypts every resident real slot of the cached buckets
// out of the store. Buckets absent from the metadata map have no store
// contents (store writes always materialize the bucket first), and
// dummy slots are never read at cached levels (the read path's
// per-level work starts at emitFrom), so warming only real residents
// makes every later cached read a guaranteed hit.
func (r *Ring) warmTreetop() {
	tt := r.tt
	// Deterministic sweep of exactly the cached range (the tree top is
	// buckets [0, nBuckets)); unmaterialized buckets have no contents.
	for idx := int64(0); idx < tt.nBuckets; idx++ {
		b, ok := r.buckets[idx]
		if !ok {
			continue
		}
		for s := range b.Slots {
			// Warming is a bus-silent copy of store contents into
			// controller memory; it emits no ops.
			if !b.Slots[s].Real || !b.Slots[s].Valid {
				continue
			}
			data, err := r.readSlotData(idx, s)
			if err != nil {
				panic(err) // corrupt store contents; unreachable with MemStore
			}
			i := tt.index(idx, s)
			r.putBlockBuf(tt.buf[i])
			tt.buf[i] = data
			tt.state[i] = ttClean
		}
	}
}

// flushTreetop seals every dirty cached slot back into the store:
// dirty-real slots under their reserved write counters, dirty-dummy
// slots as the deterministic (bucket, slot, epoch) ciphertext — exactly
// the bytes the uncached controller wrote when the slot was dirtied.
// Clean slots are skipped; their store bytes are already current. Save
// calls this before serializing the store; with a Pipeline attached the
// caller must have drained it first.
func (r *Ring) flushTreetop() {
	tt := r.tt
	if tt == nil || r.store == nil {
		return
	}
	for i, st := range tt.state {
		if st == ttClean {
			continue
		}
		bucket := int64(i / tt.slots)
		slot := i % tt.slots
		switch {
		case st == ttReal && r.crypt != nil:
			r.scr.sealBuf = r.crypt.sealWith(r.scr.sealBuf, tt.ctr[i], tt.buf[i])
			r.store.WriteSlot(bucket, slot, r.scr.sealBuf)
		case st == ttDummy && r.crypt != nil:
			r.scr.dummySeal = r.crypt.SealDummyInto(r.scr.dummySeal, bucket, slot, int(tt.epoch[i]))
			r.store.WriteSlot(bucket, slot, r.scr.dummySeal)
		default:
			// Plaintext mode stores the raw block; nil (dummy or
			// never-materialized real) stores the zero block, matching
			// sealedForStore(nil).
			buf := ensure(r.scr.sealBuf, r.cfg.BlockSize)
			r.scr.sealBuf = buf
			if tt.buf[i] == nil {
				clear(buf)
			} else {
				copy(buf, tt.buf[i])
			}
			r.store.WriteSlot(bucket, slot, buf)
		}
		tt.state[i] = ttClean
	}
}

// --- serial-plane cache operations ---

// ttFetchSerial serves a cached-level fetchToStash from controller
// memory: a copy instead of a store read plus AES open.
func (r *Ring) ttFetchSerial(bucket int64, slot int, id BlockID, p PathID) {
	buf := r.getBlockBuf()
	if src := r.tt.buf[r.tt.index(bucket, slot)]; src == nil {
		clear(buf)
	} else {
		copy(buf, src)
	}
	r.putBlockBuf(r.stash.Put(id, p, buf))
}

// ttWriteRealSerial applies a cached-level real write to controller
// memory, reserving the seal counter the uncached controller would have
// burned so the eventual flush produces bit-identical store bytes.
func (r *Ring) ttWriteRealSerial(bucket int64, slot int, src []byte) {
	tt := r.tt
	i := tt.index(bucket, slot)
	if tt.buf[i] == nil {
		tt.buf[i] = r.getBlockBuf()
	}
	if src == nil {
		clear(tt.buf[i])
	} else {
		copy(tt.buf[i], src)
	}
	var ctr uint64
	if r.crypt != nil {
		r.crypt.writeCtr++
		ctr = r.crypt.writeCtr
	}
	tt.ctr[i] = ctr
	tt.state[i] = ttReal
	tt.writerSeq[i] = 0
}

// ttWriteDummySerial applies a cached-level dummy write: pure metadata.
func (r *Ring) ttWriteDummySerial(bucket int64, slot int, epoch int) {
	tt := r.tt
	i := tt.index(bucket, slot)
	r.putBlockBuf(tt.buf[i])
	tt.buf[i] = nil
	tt.state[i] = ttDummy
	tt.epoch[i] = int32(epoch)
	tt.writerSeq[i] = 0
}

// verifyTreetop asserts (under -tags=invariants) that the cache is
// consistent with the store and bucket metadata: clean resident slots
// decrypt from the store to exactly the cached plaintext, dirty slots
// carry the state their flush needs. It must run with the data plane
// quiescent (serial operation, or a drained pipeline).
func (r *Ring) verifyTreetop() {
	if !invariant.Enabled || r.tt == nil {
		return
	}
	tt := r.tt
	for idx := int64(0); idx < tt.nBuckets; idx++ {
		b, ok := r.buckets[idx]
		if !ok {
			continue
		}
		for s := range b.Slots {
			i := tt.index(idx, s)
			switch tt.state[i] {
			case ttClean:
				if !b.Slots[s].Real || !b.Slots[s].Valid {
					continue
				}
				data, err := r.readSlotData(idx, s)
				if err != nil {
					panic(err)
				}
				want := data
				if want == nil {
					continue // timing-only: nothing to compare
				}
				got := tt.buf[i]
				ok := (got == nil && isZero(want)) || (got != nil && bytes.Equal(got, want))
				r.putBlockBuf(data)
				invariant.Assertf(ok, "treetop bucket %d slot %d: clean cache diverges from a fresh store read", idx, s)
			case ttReal:
				invariant.Assertf(r.crypt == nil || tt.ctr[i] != 0,
					"treetop bucket %d slot %d: dirty-real slot with no reserved counter", idx, s)
			case ttDummy:
				invariant.Assertf(tt.buf[i] == nil,
					"treetop bucket %d slot %d: dirty-dummy slot holds plaintext", idx, s)
			}
		}
	}
}

// isZero reports whether every byte of b is zero.
func isZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// ttAssertUncached panics under -tags=invariants if a data-plane call
// that must never see a cached bucket (XOR folds, early-reshuffle
// fetches — both start at emitFrom) receives one.
func (r *Ring) ttAssertUncached(bucket int64, what string) {
	if invariant.Enabled {
		invariant.Assertf(!r.tt.cached(bucket), "treetop: %s on cached bucket %d", what, bucket)
	}
}
