package oram

import "fmt"

// dataPlane is the seam between the Ring protocol engine and the data
// movement it causes. Every decision the protocol makes — which paths to
// read, which slots to touch, how buckets reshuffle, where the RNG
// stream advances — is metadata-only and never depends on block
// contents, so one serial admission pass produces a bit-identical
// protocol trace no matter how the data moves. The dataPlane receives
// the data work that trace implies:
//
//   - the serial plane (the Ring itself) performs each call inline,
//     exactly as the pre-pipeline controller did;
//   - the pipelined plane (pipePlane) records each call as a deferred
//     job op executed later on a worker, with bucket claims feeding the
//     conflict ledger and seal counters reserved at admission so the
//     sealed bytes stay bit-identical to serial execution.
//
// All methods run on the controller goroutine during admission.
type dataPlane interface {
	// fetchToStash moves one real block's plaintext from the store slot
	// into the stash under (id, p).
	fetchToStash(bucket int64, slot int, id BlockID, p PathID)
	// xorReset clears the XOR accumulator for a new read path.
	xorReset()
	// xorFoldSlot folds one selected slot's ciphertext into the XOR
	// accumulator, canceling deterministic dummies.
	xorFoldSlot(bucket int64, slot int, isDummy bool, epoch int)
	// xorFinishToStash decodes the XOR accumulator and stashes the
	// recovered target under (id, p).
	xorFinishToStash(id BlockID, p PathID)
	// reshuffleFetch reads one slot's plaintext and holds it for the
	// same operation's bucket rewrite.
	reshuffleFetch(bucket int64, slot int) blockRef
	// takeStash removes a block's data from the stash for placement
	// into a bucket.
	takeStash(id BlockID) blockRef
	// writeReal seals src and writes it to the slot. Calls arrive in
	// the exact slot order of the serial controller, so counter-mode
	// sealers may bind one fresh counter per call.
	writeReal(bucket int64, slot int, src blockRef)
	// writeDummy writes the slot's deterministic dummy ciphertext (or a
	// zero block without a Crypt).
	writeDummy(bucket int64, slot int, epoch int)
	// releaseRef recycles a ref consumed by writeReal.
	releaseRef(ref blockRef)
	// stashStore copies caller data into the stash under (id, p),
	// recycling any displaced buffer.
	stashStore(id BlockID, p PathID, data []byte)
	// snapshotOut captures the block's current contents for the
	// caller-visible response and returns the response buffer (the
	// pipelined plane returns nil: its response is delivered at slot
	// retirement instead).
	snapshotOut(id BlockID) []byte
}

// blockRef is a handle to one block's plaintext while it moves between
// the stash, the store and a bucket rewrite. The serial plane uses buf
// directly (nil means a zero block); the pipelined plane uses tok >= 0
// for buffers produced by the same in-flight job and buf for buffers
// owned by the stash or another job.
type blockRef struct {
	buf []byte `oramlint:"secret,scratch"`
	tok int32
}

// serialRef wraps a plain buffer for the serial plane.
func serialRef(buf []byte) blockRef { return blockRef{buf: buf, tok: -1} }

// --- serial plane: the Ring performs data movement inline ---

func (r *Ring) fetchToStash(bucket int64, slot int, id BlockID, p PathID) {
	// Treetop elision: every access's path crosses every cached level,
	// so serving those uniform per-level operations from controller
	// memory instead of the bus is invisible to the adversary (the op
	// trace already excludes cached levels); the branch keys on the
	// bucket index, which the emitted op list makes public.
	if r.tt.cached(bucket) {
		r.ttFetchSerial(bucket, slot, id, p)
		return
	}
	data, err := r.readSlotData(bucket, slot)
	if err != nil {
		panic(err) // corrupt store contents; unreachable with MemStore
	}
	r.putBlockBuf(r.stash.Put(id, p, data))
}

func (r *Ring) xorReset() { r.scr.xorAcc = r.scr.xorAcc[:0] }

// xorFoldSlot folds one selected slot's ciphertext into the XOR
// accumulator, canceling deterministic dummy ciphertexts as it goes.
func (r *Ring) xorFoldSlot(bucket int64, slot int, isDummy bool, epoch int) {
	r.ttAssertUncached(bucket, "xorFoldSlot") // XOR folding starts at emitFrom
	sealed := r.store.ReadSlot(bucket, slot)
	if sealed == nil {
		// A never-written slot contributes nothing, and the controller
		// knows it (slot epochs are controller state).
		return
	}
	if len(r.scr.xorAcc) == 0 {
		r.scr.xorAcc = append(r.scr.xorAcc, sealed...)
	} else {
		XORBlocks(r.scr.xorAcc, sealed)
	}
	if isDummy {
		r.scr.dummySeal = r.crypt.SealDummyInto(r.scr.dummySeal, bucket, slot, epoch)
		XORBlocks(r.scr.xorAcc, r.scr.dummySeal)
	}
}

func (r *Ring) xorFinishToStash(id BlockID, p PathID) {
	data, err := r.crypt.OpenInto(r.getBlockBuf(), r.scr.xorAcc)
	if err != nil {
		panic(fmt.Sprintf("oram: XOR decode of block %d: %v", id, err))
	}
	r.putBlockBuf(r.stash.Put(id, p, data))
}

func (r *Ring) reshuffleFetch(bucket int64, slot int) blockRef {
	r.ttAssertUncached(bucket, "reshuffleFetch") // early reshuffles start at emitFrom
	data, err := r.readSlotData(bucket, slot)
	if err != nil {
		panic(err)
	}
	return serialRef(data)
}

func (r *Ring) takeStash(id BlockID) blockRef {
	return serialRef(r.stash.Remove(id))
}

func (r *Ring) writeReal(bucket int64, slot int, src blockRef) {
	// Treetop elision: the eviction rewrites every slot of every bucket
	// on its path regardless of contents, so absorbing the cached
	// levels' uniform writes into controller memory (flushed sealed
	// under reserved counters at snapshot epochs) changes no
	// bus-visible behaviour; the bucket index is public.
	if r.tt.cached(bucket) {
		r.ttWriteRealSerial(bucket, slot, src.buf)
		return
	}
	r.store.WriteSlot(bucket, slot, r.sealedForStore(src.buf))
}

func (r *Ring) writeDummy(bucket int64, slot int, epoch int) {
	if r.tt.cached(bucket) {
		r.ttWriteDummySerial(bucket, slot, epoch)
		return
	}
	if r.crypt != nil {
		// Dummies seal deterministically per (bucket, slot, epoch) so
		// XOR reads can cancel them; each epoch is written once, so
		// bus-visible ciphertexts are still always fresh.
		r.scr.dummySeal = r.crypt.SealDummyInto(r.scr.dummySeal, bucket, slot, epoch)
		r.store.WriteSlot(bucket, slot, r.scr.dummySeal)
	} else {
		r.store.WriteSlot(bucket, slot, r.sealedForStore(nil))
	}
}

func (r *Ring) releaseRef(ref blockRef) { r.putBlockBuf(ref.buf) }

func (r *Ring) stashStore(id BlockID, p PathID, data []byte) {
	var stored []byte
	if r.store != nil {
		stored = r.getBlockBuf()
		copy(stored, data)
	}
	r.putBlockBuf(r.stash.Put(id, p, stored))
}

func (r *Ring) snapshotOut(id BlockID) []byte {
	cur := r.stash.Get(id)
	out := ensure(r.scr.outBuf, r.cfg.BlockSize)
	r.scr.outBuf = out
	if cur == nil {
		clear(out)
	} else {
		copy(out, cur)
	}
	return out
}
