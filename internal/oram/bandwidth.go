package oram

import "stringoram/internal/config"

// Bandwidth summarizes the blocks transferred per logical access for an
// ORAM construction, the metric behind the paper's introductory claim
// that Ring ORAM cuts overall bandwidth 2.3-4x and online bandwidth >60x
// versus Path ORAM.
type Bandwidth struct {
	// Online is the blocks transferred on the critical path of a read
	// (before the program's data is available).
	Online float64
	// Overall is the amortized total including evictions and reshuffles.
	Overall float64
}

// RingBandwidth returns the analytic per-access bandwidth of Ring ORAM
// with the given configuration. With the XOR technique (Ren et al.,
// USENIX Security'15) the L+1 read-path blocks are XOR-combined by the
// memory into a single block, so the online cost drops to 1.
//
// Per access: read path transfers L+1 blocks; every A accesses one
// EvictPath reads Z and writes Z+S-Y blocks per bucket on L+1 buckets.
// Early reshuffles are rare with S >= A and excluded, matching the usual
// analytic treatment.
func RingBandwidth(o config.ORAM, xor bool) Bandwidth {
	levels := float64(o.Levels)
	online := levels
	if xor {
		online = 1
	}
	evict := levels * float64(o.Z+o.SlotsPerBucket()) / float64(o.A)
	return Bandwidth{Online: online, Overall: online + evict}
}

// PathBandwidth returns the analytic per-access bandwidth of Path ORAM
// with Z-slot buckets: the full path is read and written on every access,
// and the read phase is entirely online.
func PathBandwidth(z, levels int) Bandwidth {
	per := float64(z) * float64(levels)
	return Bandwidth{Online: per, Overall: 2 * per}
}

// MeasuredBandwidth tallies the actual per-access block transfers from a
// run's protocol statistics.
func MeasuredBandwidth(s Stats) Bandwidth {
	accesses := float64(s.Reads + s.Writes)
	if accesses == 0 {
		return Bandwidth{}
	}
	total := float64(s.ReadPathBlocks + s.EvictBlocks + s.ReshuffleBlocks)
	online := float64(s.ReadPathBlocks) / float64(maxI64(s.ReadPaths+s.DummyReadPaths, 1))
	return Bandwidth{Online: online, Overall: total / accesses}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
