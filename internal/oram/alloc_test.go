package oram

import (
	"testing"

	"stringoram/internal/config"
	"stringoram/internal/invariant"
	"stringoram/internal/obs"
)

// The data-plane hot path is contractually allocation-free in steady
// state: seal/open run through caller buffers, XOR folding reuses the
// accumulator, and the controller recycles block buffers and op lists.
// These guards pin that property so a regression shows up as a test
// failure, not a silent benchmark drift.

func TestAllocFreeSealInto(t *testing.T) {
	c, err := NewCrypt([]byte("0123456789abcdef"), 64)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 64)
	buf := c.SealInto(nil, payload) // warm the buffer
	if n := testing.AllocsPerRun(100, func() {
		buf = c.SealInto(buf, payload)
	}); n != 0 {
		t.Fatalf("SealInto allocates %.1f times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		buf = c.SealDummyInto(buf, 7, 3, 9)
	}); n != 0 {
		t.Fatalf("SealDummyInto allocates %.1f times per op, want 0", n)
	}
}

func TestAllocFreeOpenInto(t *testing.T) {
	c, err := NewCrypt([]byte("0123456789abcdef"), 64)
	if err != nil {
		t.Fatal(err)
	}
	sealed := c.Seal(make([]byte, 64))
	out := make([]byte, 64)
	if n := testing.AllocsPerRun(100, func() {
		var err error
		out, err = c.OpenInto(out, sealed)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("OpenInto allocates %.1f times per op, want 0", n)
	}
}

func TestAllocFreeXORBlocks(t *testing.T) {
	dst := make([]byte, 72)
	src := make([]byte, 72)
	if n := testing.AllocsPerRun(100, func() {
		XORBlocks(dst, src)
	}); n != 0 {
		t.Fatalf("XORBlocks allocates %.1f times per op, want 0", n)
	}
}

func TestAllocFreeStashCycle(t *testing.T) {
	s := NewStash(64)
	buf := make([]byte, 64)
	// Warm the map so steady-state Put/Remove reuses its cells.
	for i := 0; i < 32; i++ {
		s.Put(BlockID(i), PathID(i), nil)
	}
	for i := 0; i < 32; i++ {
		s.Remove(BlockID(i))
	}
	if n := testing.AllocsPerRun(200, func() {
		s.Put(5, 9, buf)
		buf = s.Remove(5)
	}); n != 0 {
		t.Fatalf("stash Put/Remove cycle allocates %.1f times per op, want 0", n)
	}
}

// TestAllocFreeFunctionalAccess drives a warmed functional ring (store +
// AES sealing + XOR decode) and asserts the steady-state access loop
// performs zero heap allocations. The warmup spans several full
// reverse-lexicographic eviction cycles so every bucket, pool buffer,
// and scratch slice reaches its steady capacity first.
func TestAllocFreeFunctionalAccess(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate; the zero-alloc guarantee binds on the default build")
	}
	cfg := config.Default().ORAM
	cfg.Levels = 8
	crypt, err := NewCrypt([]byte("0123456789abcdef"), cfg.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(cfg, 7, &Options{Store: NewMemStore(cfg.SlotsPerBucket()), Crypt: crypt})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, cfg.BlockSize)
	const keys = 256
	step := func(i int) {
		var err error
		if i%2 == 0 {
			_, _, err = r.Access(BlockID(i%keys), true, payload)
		} else {
			_, _, err = r.Access(BlockID(i%keys), false, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8192; i++ {
		step(i)
	}
	i := 8192
	if n := testing.AllocsPerRun(500, func() {
		step(i)
		i++
	}); n != 0 {
		t.Fatalf("warmed functional Access allocates %.1f times per op, want 0", n)
	}
}

// TestAllocFreeInstrumentedAccess repeats the functional-access guard
// with the full observability stack live — metrics registry, every ring
// instrument, and a flight recorder receiving events — pinning the
// tentpole constraint that enabled telemetry adds 0 allocs/op.
func TestAllocFreeInstrumentedAccess(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate; the zero-alloc guarantee binds on the default build")
	}
	cfg := config.Default().ORAM
	cfg.Levels = 8
	crypt, err := NewCrypt([]byte("0123456789abcdef"), cfg.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(cfg, 7, &Options{Store: NewMemStore(cfg.SlotsPerBucket()), Crypt: crypt})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ins := NewInstruments(reg, `ring="alloc-test"`)
	ins.Recorder = obs.NewRecorder("accesses", 1024)
	r.Instrument(ins)
	payload := make([]byte, cfg.BlockSize)
	const keys = 256
	step := func(i int) {
		var err error
		if i%2 == 0 {
			_, _, err = r.Access(BlockID(i%keys), true, payload)
		} else {
			_, _, err = r.Access(BlockID(i%keys), false, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8192; i++ {
		step(i)
	}
	i := 8192
	if n := testing.AllocsPerRun(500, func() {
		step(i)
		i++
	}); n != 0 {
		t.Fatalf("instrumented warmed Access allocates %.1f times per op, want 0", n)
	}
	if ins.Accesses.Value() == 0 || ins.Stash.Value() < 0 || ins.Recorder.Total() == 0 {
		t.Fatal("instruments were not actually live during the guard")
	}
}
