package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesPaperTables(t *testing.T) {
	s := Default()
	o := s.ORAM
	if o.Z != 8 || o.S != 12 || o.Y != 8 || o.Levels != 24 ||
		o.TreeTopCacheLevels != 6 || o.BlockSize != 64 || o.StashSize != 500 {
		t.Fatalf("ORAM defaults diverge from Table III: %+v", o)
	}
	if s.DRAM.Channels != 4 || s.DRAM.Banks != 8 || s.DRAM.ReadQueue != 64 {
		t.Fatalf("DRAM defaults diverge from Table II: %+v", s.DRAM)
	}
	if s.CPU.Cores != 4 || s.CPU.ROBSize != 128 || s.CPU.RetireWidth != 4 {
		t.Fatalf("CPU defaults diverge from Table I: %+v", s.CPU)
	}
}

func TestBucketsLeaves(t *testing.T) {
	o := ORAM{Levels: 4}
	if got := o.Buckets(); got != 15 {
		t.Errorf("Buckets() = %d, want 15", got)
	}
	if got := o.Leaves(); got != 8 {
		t.Errorf("Leaves() = %d, want 8", got)
	}
	if got := o.L(); got != 3 {
		t.Errorf("L() = %d, want 3", got)
	}
}

// TestFig4Capacities checks the headline numbers the paper reads off
// Fig. 4: Config-1 stores 4 GB of real blocks; Config-4 stores 32 GB of
// real blocks and needs 58 GB of dummies, for 35.56% space efficiency.
func TestFig4Capacities(t *testing.T) {
	cfgs := Fig4Configs()
	wantRealGB := []float64{4, 8, 16, 32}
	for i, rc := range cfgs {
		o := ORAMForRing(rc)
		if err := o.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", rc.Name, err)
		}
		gb := float64(o.RealCapacityBytes()) / float64(1<<30)
		// 2^24-1 buckets is within 1e-5 of 2^24, so compare loosely.
		if diff := gb - wantRealGB[i]; diff < -0.01 || diff > 0.01 {
			t.Errorf("%s real capacity = %.3f GB, want ~%.0f GB", rc.Name, gb, wantRealGB[i])
		}
		if rc.S != rc.A+rc.X {
			t.Errorf("%s: S (%d) != A+X (%d)", rc.Name, rc.S, rc.A+rc.X)
		}
	}
	c4 := ORAMForRing(cfgs[3])
	eff := c4.SpaceEfficiency()
	if eff < 0.3550 || eff > 0.3562 {
		t.Errorf("Config-4 space efficiency = %.4f, want ~0.3556", eff)
	}
	dummyGB := float64(c4.DummyCapacityBytes()) / float64(1<<30)
	if dummyGB < 57.9 || dummyGB > 58.1 {
		t.Errorf("Config-4 dummy capacity = %.2f GB, want ~58 GB", dummyGB)
	}
}

// TestTableVSpace checks Table V: with Z=8, S=12, L=23 the total memory
// space for Y = 0,2,4,6,8 is 20,18,16,14,12 GB and the dummy percentage is
// 60, 55.6, 50, 42.9, 33.3.
func TestTableVSpace(t *testing.T) {
	wantGB := []float64{20, 18, 16, 14, 12}
	wantDummyPct := []float64{60, 55.6, 50, 42.9, 33.3}
	for i, cb := range TableVConfigs() {
		o := Default().WithCBRate(cb.Y).ORAM
		gb := float64(o.TotalCapacityBytes()) / float64(1<<30)
		if diff := gb - wantGB[i]; diff < -0.01 || diff > 0.01 {
			t.Errorf("%s (Y=%d): total = %.3f GB, want ~%.0f GB", cb.Name, cb.Y, gb, wantGB[i])
		}
		pct := o.DummyPercentage() * 100
		if diff := pct - wantDummyPct[i]; diff < -0.1 || diff > 0.1 {
			t.Errorf("%s (Y=%d): dummy%% = %.2f, want ~%.1f", cb.Name, cb.Y, pct, wantDummyPct[i])
		}
	}
}

func TestORAMValidateRejections(t *testing.T) {
	base := Default().ORAM
	cases := []struct {
		name   string
		mutate func(*ORAM)
		want   string
	}{
		{"zero Z", func(o *ORAM) { o.Z = 0 }, "Z must be positive"},
		{"negative S", func(o *ORAM) { o.S = -1 }, "S must be positive"},
		{"Y above S", func(o *ORAM) { o.Y = o.S + 1 }, "Y must be in"},
		{"Y above Z", func(o *ORAM) { o.Z = 4; o.Y = 5 }, "cannot exceed Z"},
		{"zero A", func(o *ORAM) { o.A = 0 }, "A must be positive"},
		{"S below A", func(o *ORAM) { o.A = o.S + 1 }, "must be >= A"},
		{"tiny tree", func(o *ORAM) { o.Levels = 1 }, "Levels must be in"},
		{"cache whole tree", func(o *ORAM) { o.TreeTopCacheLevels = o.Levels }, "TreeTopCacheLevels"},
		{"odd block size", func(o *ORAM) { o.BlockSize = 48 }, "power of two"},
		{"zero stash", func(o *ORAM) { o.StashSize = 0 }, "StashSize must be positive"},
		{"threshold above stash", func(o *ORAM) { o.BackgroundEvictThreshold = o.StashSize + 1 }, "BackgroundEvictThreshold"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mutate(&o)
			err := o.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestDRAMValidateRejections(t *testing.T) {
	base := Default().DRAM
	cases := []struct {
		name   string
		mutate func(*DRAM)
	}{
		{"zero channels", func(d *DRAM) { d.Channels = 0 }},
		{"non-pow2 banks", func(d *DRAM) { d.Banks = 6 }},
		{"zero queue", func(d *DRAM) { d.ReadQueue = 0 }},
		{"zero clock mul", func(d *DRAM) { d.CPUClockMul = 0 }},
		{"bad tRC", func(d *DRAM) { d.Timing.TRC = d.Timing.TRAS }},
		{"zero CL", func(d *DRAM) { d.Timing.CL = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base
			tc.mutate(&d)
			if d.Validate() == nil {
				t.Fatal("expected validation error, got nil")
			}
		})
	}
}

func TestSystemCrossValidation(t *testing.T) {
	s := Default()
	s.Cache.LineSize = 128
	s.Cache.SizeBytes = 4 << 20
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "line size") {
		t.Fatalf("expected line-size mismatch error, got %v", err)
	}

	s = Default()
	s.DRAM.Rows = 4 // tree no longer fits
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "DRAM only has") {
		t.Fatalf("expected capacity error, got %v", err)
	}
}

func TestTreeFitsInDefaultDRAM(t *testing.T) {
	s := Default()
	need := s.ORAM.TotalCapacityBytes()
	have := s.DRAM.CapacityBytes(s.ORAM.BlockSize)
	if need > have {
		t.Fatalf("tree (%d bytes) does not fit in DRAM (%d bytes)", need, have)
	}
	// The paper's 20 GB tree in a 32 GB memory.
	if gb := float64(need) / float64(1<<30); gb < 11.9 || gb > 12.1 {
		// Default has Y=8 so the tree is 12 GB; Y=0 is 20 GB.
		t.Errorf("default (Y=8) tree = %.2f GB, want ~12 GB", gb)
	}
	y0 := Default().WithCBRate(0).ORAM
	if gb := float64(y0.TotalCapacityBytes()) / float64(1<<30); gb < 19.9 || gb > 20.1 {
		t.Errorf("Y=0 tree = %.2f GB, want ~20 GB", gb)
	}
	if gb := float64(have) / float64(1<<30); gb != 32 {
		t.Errorf("DRAM capacity = %.2f GB, want 32 GB", gb)
	}
}

func TestScaledDefaultValidates(t *testing.T) {
	for _, levels := range []int{6, 8, 10, 12, 14} {
		s := ScaledDefault(levels)
		if err := s.Validate(); err != nil {
			t.Errorf("ScaledDefault(%d) invalid: %v", levels, err)
		}
	}
}

func TestSchedulerKindString(t *testing.T) {
	if SchedTransaction.String() != "transaction" {
		t.Error("bad string for SchedTransaction")
	}
	if SchedProactiveBank.String() != "proactive-bank" {
		t.Error("bad string for SchedProactiveBank")
	}
	if !strings.Contains(SchedulerKind(42).String(), "42") {
		t.Error("bad string for unknown kind")
	}
}

func TestWithHelpers(t *testing.T) {
	s := Default()
	s2 := s.WithCBRate(4).WithScheduler(SchedProactiveBank).WithStashSize(300)
	if s2.ORAM.Y != 4 || s2.Scheduler != SchedProactiveBank || s2.ORAM.StashSize != 300 {
		t.Fatalf("With helpers did not apply: %+v", s2)
	}
	if s.ORAM.Y != 8 || s.Scheduler != SchedTransaction || s.ORAM.StashSize != 500 {
		t.Fatalf("With helpers mutated the receiver: %+v", s)
	}
}

func TestEvictThresholdDefault(t *testing.T) {
	o := Default().ORAM
	if got := o.EvictThreshold(); got != 450 {
		t.Errorf("default threshold = %d, want 450 (90%% of 500)", got)
	}
	o.BackgroundEvictThreshold = 123
	if got := o.EvictThreshold(); got != 123 {
		t.Errorf("explicit threshold = %d, want 123", got)
	}
}

func TestRowBytes(t *testing.T) {
	d := Default().DRAM
	if got := d.RowBytes(64); got != 8192 {
		t.Errorf("RowBytes = %d, want 8192 (128 lines x 64 B)", got)
	}
	if got := d.TotalBanks(); got != 32 {
		t.Errorf("TotalBanks = %d, want 32", got)
	}
}
