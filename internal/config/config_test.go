package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesPaperTables(t *testing.T) {
	s := Default()
	o := s.ORAM
	if o.Z != 8 || o.S != 12 || o.Y != 8 || o.Levels != 24 ||
		o.TreeTopCacheLevels != 6 || o.BlockSize != 64 || o.StashSize != 500 {
		t.Fatalf("ORAM defaults diverge from Table III: %+v", o)
	}
	if s.DRAM.Channels != 4 || s.DRAM.Banks != 8 || s.DRAM.ReadQueue != 64 {
		t.Fatalf("DRAM defaults diverge from Table II: %+v", s.DRAM)
	}
	if s.CPU.Cores != 4 || s.CPU.ROBSize != 128 || s.CPU.RetireWidth != 4 {
		t.Fatalf("CPU defaults diverge from Table I: %+v", s.CPU)
	}
}

func TestBucketsLeaves(t *testing.T) {
	o := ORAM{Levels: 4}
	if got := o.Buckets(); got != 15 {
		t.Errorf("Buckets() = %d, want 15", got)
	}
	if got := o.Leaves(); got != 8 {
		t.Errorf("Leaves() = %d, want 8", got)
	}
	if got := o.L(); got != 3 {
		t.Errorf("L() = %d, want 3", got)
	}
}

// TestFig4Capacities checks the headline numbers the paper reads off
// Fig. 4: Config-1 stores 4 GB of real blocks; Config-4 stores 32 GB of
// real blocks and needs 58 GB of dummies, for 35.56% space efficiency.
func TestFig4Capacities(t *testing.T) {
	cfgs := Fig4Configs()
	wantRealGB := []float64{4, 8, 16, 32}
	for i, rc := range cfgs {
		o := ORAMForRing(rc)
		if err := o.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", rc.Name, err)
		}
		gb := float64(o.RealCapacityBytes()) / float64(1<<30)
		// 2^24-1 buckets is within 1e-5 of 2^24, so compare loosely.
		if diff := gb - wantRealGB[i]; diff < -0.01 || diff > 0.01 {
			t.Errorf("%s real capacity = %.3f GB, want ~%.0f GB", rc.Name, gb, wantRealGB[i])
		}
		if rc.S != rc.A+rc.X {
			t.Errorf("%s: S (%d) != A+X (%d)", rc.Name, rc.S, rc.A+rc.X)
		}
	}
	c4 := ORAMForRing(cfgs[3])
	eff := c4.SpaceEfficiency()
	if eff < 0.3550 || eff > 0.3562 {
		t.Errorf("Config-4 space efficiency = %.4f, want ~0.3556", eff)
	}
	dummyGB := float64(c4.DummyCapacityBytes()) / float64(1<<30)
	if dummyGB < 57.9 || dummyGB > 58.1 {
		t.Errorf("Config-4 dummy capacity = %.2f GB, want ~58 GB", dummyGB)
	}
}

// TestTableVSpace checks Table V: with Z=8, S=12, L=23 the total memory
// space for Y = 0,2,4,6,8 is 20,18,16,14,12 GB and the dummy percentage is
// 60, 55.6, 50, 42.9, 33.3.
func TestTableVSpace(t *testing.T) {
	wantGB := []float64{20, 18, 16, 14, 12}
	wantDummyPct := []float64{60, 55.6, 50, 42.9, 33.3}
	for i, cb := range TableVConfigs() {
		o := Default().WithCBRate(cb.Y).ORAM
		gb := float64(o.TotalCapacityBytes()) / float64(1<<30)
		if diff := gb - wantGB[i]; diff < -0.01 || diff > 0.01 {
			t.Errorf("%s (Y=%d): total = %.3f GB, want ~%.0f GB", cb.Name, cb.Y, gb, wantGB[i])
		}
		pct := o.DummyPercentage() * 100
		if diff := pct - wantDummyPct[i]; diff < -0.1 || diff > 0.1 {
			t.Errorf("%s (Y=%d): dummy%% = %.2f, want ~%.1f", cb.Name, cb.Y, pct, wantDummyPct[i])
		}
	}
}

func TestORAMValidateRejections(t *testing.T) {
	base := Default().ORAM
	cases := []struct {
		name   string
		mutate func(*ORAM)
		want   string
	}{
		{"zero Z", func(o *ORAM) { o.Z = 0 }, "Z must be positive"},
		{"negative S", func(o *ORAM) { o.S = -1 }, "S must be positive"},
		{"negative Y", func(o *ORAM) { o.Y = -1 }, "Y must be in"},
		{"Y above S", func(o *ORAM) { o.Y = o.S + 1 }, "Y must be in"},
		{"Y above Z", func(o *ORAM) { o.Z = 4; o.Y = 5 }, "cannot exceed Z"},
		{"zero A", func(o *ORAM) { o.A = 0 }, "A must be positive"},
		{"S below A", func(o *ORAM) { o.A = o.S + 1 }, "must be >= A"},
		{"tiny tree", func(o *ORAM) { o.Levels = 1 }, "Levels must be in"},
		{"huge tree", func(o *ORAM) { o.Levels = 41 }, "Levels must be in"},
		{"negative top cache", func(o *ORAM) { o.TreeTopCacheLevels = -1 }, "TreeTopCacheLevels"},
		{"cache whole tree", func(o *ORAM) { o.TreeTopCacheLevels = o.Levels }, "TreeTopCacheLevels"},
		{"zero block size", func(o *ORAM) { o.BlockSize = 0 }, "power of two"},
		{"odd block size", func(o *ORAM) { o.BlockSize = 48 }, "power of two"},
		{"zero stash", func(o *ORAM) { o.StashSize = 0 }, "StashSize must be positive"},
		{"negative threshold", func(o *ORAM) { o.BackgroundEvictThreshold = -1 }, "BackgroundEvictThreshold"},
		{"threshold above stash", func(o *ORAM) { o.BackgroundEvictThreshold = o.StashSize + 1 }, "BackgroundEvictThreshold"},
		{"negative warm fill", func(o *ORAM) { o.WarmFill = -0.1 }, "WarmFill"},
		{"warm fill too high", func(o *ORAM) { o.WarmFill = 0.95 }, "WarmFill"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			tc.mutate(&o)
			err := o.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestDRAMValidateRejections(t *testing.T) {
	base := Default().DRAM
	cases := []struct {
		name   string
		mutate func(*DRAM)
	}{
		{"zero channels", func(d *DRAM) { d.Channels = 0 }},
		{"zero ranks", func(d *DRAM) { d.Ranks = 0 }},
		{"zero banks", func(d *DRAM) { d.Banks = 0 }},
		{"zero rows", func(d *DRAM) { d.Rows = 0 }},
		{"zero columns", func(d *DRAM) { d.Columns = 0 }},
		{"zero read queue", func(d *DRAM) { d.ReadQueue = 0 }},
		{"zero write queue", func(d *DRAM) { d.WriteQueue = 0 }},
		{"zero clock mul", func(d *DRAM) { d.CPUClockMul = 0 }},
		{"non-pow2 channels", func(d *DRAM) { d.Channels = 3 }},
		{"non-pow2 ranks", func(d *DRAM) { d.Ranks = 3 }},
		{"non-pow2 banks", func(d *DRAM) { d.Banks = 6 }},
		{"non-pow2 rows", func(d *DRAM) { d.Rows = 1000 }},
		{"non-pow2 columns", func(d *DRAM) { d.Columns = 100 }},
		{"bad tRC", func(d *DRAM) { d.Timing.TRC = d.Timing.TRAS }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := base
			tc.mutate(&d)
			if d.Validate() == nil {
				t.Fatal("expected validation error, got nil")
			}
		})
	}
}

// TestDRAMTimingValidateRejections zeroes each timing field in turn: every
// constraint in the Validate loop must trip and name the field.
func TestDRAMTimingValidateRejections(t *testing.T) {
	fields := []struct {
		name string
		zero func(*DRAMTiming)
	}{
		{"CL", func(tm *DRAMTiming) { tm.CL = 0 }},
		{"CWL", func(tm *DRAMTiming) { tm.CWL = 0 }},
		{"TRCD", func(tm *DRAMTiming) { tm.TRCD = 0 }},
		{"TRP", func(tm *DRAMTiming) { tm.TRP = 0 }},
		{"TRAS", func(tm *DRAMTiming) { tm.TRAS = 0 }},
		{"TRC", func(tm *DRAMTiming) { tm.TRC = 0 }},
		{"TCCD", func(tm *DRAMTiming) { tm.TCCD = 0 }},
		{"TRRD", func(tm *DRAMTiming) { tm.TRRD = 0 }},
		{"TFAW", func(tm *DRAMTiming) { tm.TFAW = 0 }},
		{"TWTR", func(tm *DRAMTiming) { tm.TWTR = 0 }},
		{"TWR", func(tm *DRAMTiming) { tm.TWR = 0 }},
		{"TRTP", func(tm *DRAMTiming) { tm.TRTP = 0 }},
		{"TBUS", func(tm *DRAMTiming) { tm.TBUS = 0 }},
		{"TRFC", func(tm *DRAMTiming) { tm.TRFC = 0 }},
		{"REFI", func(tm *DRAMTiming) { tm.REFI = 0 }},
	}
	for _, f := range fields {
		t.Run(f.name, func(t *testing.T) {
			tm := DDR31600Timing()
			f.zero(&tm)
			err := tm.Validate()
			if err == nil {
				t.Fatalf("expected error for zero %s, got nil", f.name)
			}
			if !strings.Contains(err.Error(), f.name) {
				t.Fatalf("error %q does not name field %s", err, f.name)
			}
		})
	}
	if err := DDR31600Timing().Validate(); err != nil {
		t.Fatalf("DDR3-1600 timing invalid: %v", err)
	}
}

func TestCPUValidateRejections(t *testing.T) {
	base := Default().CPU
	cases := []struct {
		name   string
		mutate func(*CPU)
		want   string
	}{
		{"zero cores", func(c *CPU) { c.Cores = 0 }, "Cores"},
		{"zero rob", func(c *CPU) { c.ROBSize = 0 }, "ROBSize"},
		{"zero retire width", func(c *CPU) { c.RetireWidth = 0 }, "RetireWidth"},
		{"zero max misses", func(c *CPU) { c.MaxMisses = 0 }, "MaxMisses"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestCacheValidateRejections(t *testing.T) {
	base := Default().Cache
	cases := []struct {
		name   string
		mutate func(*Cache)
		want   string
	}{
		{"zero size", func(c *Cache) { c.SizeBytes = 0 }, "SizeBytes"},
		{"zero line size", func(c *Cache) { c.LineSize = 0 }, "LineSize"},
		{"non-pow2 line size", func(c *Cache) { c.LineSize = 48 }, "LineSize"},
		{"zero ways", func(c *Cache) { c.Ways = 0 }, "Ways"},
		{"non-pow2 sets", func(c *Cache) { c.SizeBytes = 3 << 20 }, "sets"},
		{"zero sets", func(c *Cache) { c.SizeBytes = 512 }, "sets"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base
			tc.mutate(&c)
			err := c.Validate()
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestSystemEnumValidation covers the unknown-enum branches of
// System.Validate: scheduler kind, layout kind, and page policy.
func TestSystemEnumValidation(t *testing.T) {
	s := Default()
	s.Scheduler = SchedulerKind(42)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "scheduler") {
		t.Fatalf("expected unknown-scheduler error, got %v", err)
	}

	s = Default()
	s.Layout = LayoutKind(42)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "layout") {
		t.Fatalf("expected unknown-layout error, got %v", err)
	}

	s = Default()
	s.DRAM.Policy = PagePolicy(42)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "page policy") {
		t.Fatalf("expected unknown-page-policy error, got %v", err)
	}
}

// TestSystemSubValidationPropagates checks that System.Validate surfaces
// errors from each sub-config's Validate.
func TestSystemSubValidationPropagates(t *testing.T) {
	s := Default()
	s.ORAM.Z = 0
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "Z must be positive") {
		t.Fatalf("expected ORAM error, got %v", err)
	}

	s = Default()
	s.DRAM.Channels = 0
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "Channels") {
		t.Fatalf("expected DRAM error, got %v", err)
	}

	s = Default()
	s.CPU.Cores = 0
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "Cores") {
		t.Fatalf("expected CPU error, got %v", err)
	}

	s = Default()
	s.Cache.Ways = 0
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "Ways") {
		t.Fatalf("expected cache error, got %v", err)
	}
}

func TestSystemCrossValidation(t *testing.T) {
	s := Default()
	s.Cache.LineSize = 128
	s.Cache.SizeBytes = 4 << 20
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "line size") {
		t.Fatalf("expected line-size mismatch error, got %v", err)
	}

	s = Default()
	s.DRAM.Rows = 4 // tree no longer fits
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "DRAM only has") {
		t.Fatalf("expected capacity error, got %v", err)
	}
}

func TestTreeFitsInDefaultDRAM(t *testing.T) {
	s := Default()
	need := s.ORAM.TotalCapacityBytes()
	have := s.DRAM.CapacityBytes(s.ORAM.BlockSize)
	if need > have {
		t.Fatalf("tree (%d bytes) does not fit in DRAM (%d bytes)", need, have)
	}
	// The paper's 20 GB tree in a 32 GB memory.
	if gb := float64(need) / float64(1<<30); gb < 11.9 || gb > 12.1 {
		// Default has Y=8 so the tree is 12 GB; Y=0 is 20 GB.
		t.Errorf("default (Y=8) tree = %.2f GB, want ~12 GB", gb)
	}
	y0 := Default().WithCBRate(0).ORAM
	if gb := float64(y0.TotalCapacityBytes()) / float64(1<<30); gb < 19.9 || gb > 20.1 {
		t.Errorf("Y=0 tree = %.2f GB, want ~20 GB", gb)
	}
	if gb := float64(have) / float64(1<<30); gb != 32 {
		t.Errorf("DRAM capacity = %.2f GB, want 32 GB", gb)
	}
}

func TestScaledDefaultValidates(t *testing.T) {
	for _, levels := range []int{6, 8, 10, 12, 14} {
		s := ScaledDefault(levels)
		if err := s.Validate(); err != nil {
			t.Errorf("ScaledDefault(%d) invalid: %v", levels, err)
		}
	}
}

func TestSchedulerKindString(t *testing.T) {
	if SchedTransaction.String() != "transaction" {
		t.Error("bad string for SchedTransaction")
	}
	if SchedProactiveBank.String() != "proactive-bank" {
		t.Error("bad string for SchedProactiveBank")
	}
	if !strings.Contains(SchedulerKind(42).String(), "42") {
		t.Error("bad string for unknown kind")
	}
}

func TestWithHelpers(t *testing.T) {
	s := Default()
	s2 := s.WithCBRate(4).WithScheduler(SchedProactiveBank).WithStashSize(300)
	if s2.ORAM.Y != 4 || s2.Scheduler != SchedProactiveBank || s2.ORAM.StashSize != 300 {
		t.Fatalf("With helpers did not apply: %+v", s2)
	}
	if s.ORAM.Y != 8 || s.Scheduler != SchedTransaction || s.ORAM.StashSize != 500 {
		t.Fatalf("With helpers mutated the receiver: %+v", s)
	}
}

func TestEvictThresholdDefault(t *testing.T) {
	o := Default().ORAM
	if got := o.EvictThreshold(); got != 450 {
		t.Errorf("default threshold = %d, want 450 (90%% of 500)", got)
	}
	o.BackgroundEvictThreshold = 123
	if got := o.EvictThreshold(); got != 123 {
		t.Errorf("explicit threshold = %d, want 123", got)
	}
}

func TestRowBytes(t *testing.T) {
	d := Default().DRAM
	if got := d.RowBytes(64); got != 8192 {
		t.Errorf("RowBytes = %d, want 8192 (128 lines x 64 B)", got)
	}
	if got := d.TotalBanks(); got != 32 {
		t.Errorf("TotalBanks = %d, want 32", got)
	}
}
