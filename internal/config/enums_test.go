package config

import (
	"strings"
	"testing"
)

func TestPagePolicyString(t *testing.T) {
	if OpenPage.String() != "open-page" || ClosePage.String() != "close-page" {
		t.Fatal("bad page policy strings")
	}
	if !strings.Contains(PagePolicy(9).String(), "9") {
		t.Fatal("unknown policy string")
	}
}

func TestLayoutKindString(t *testing.T) {
	if LayoutSubtree.String() != "subtree" || LayoutFlat.String() != "flat" {
		t.Fatal("bad layout strings")
	}
	if !strings.Contains(LayoutKind(9).String(), "9") {
		t.Fatal("unknown layout string")
	}
}

func TestSystemRejectsUnknownEnums(t *testing.T) {
	s := Default()
	s.Layout = LayoutKind(42)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "layout") {
		t.Fatalf("bad layout accepted: %v", err)
	}
	s = Default()
	s.DRAM.Policy = PagePolicy(42)
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "page policy") {
		t.Fatalf("bad policy accepted: %v", err)
	}
}

func TestWithLayoutAndPolicy(t *testing.T) {
	s := Default().WithLayout(LayoutFlat).WithPagePolicy(ClosePage)
	if s.Layout != LayoutFlat || s.DRAM.Policy != ClosePage {
		t.Fatal("With helpers did not apply")
	}
	// The receiver stays untouched.
	if d := Default(); d.Layout != LayoutSubtree || d.DRAM.Policy != OpenPage {
		t.Fatal("defaults changed")
	}
}

func TestWarmFillValidation(t *testing.T) {
	o := Default().ORAM
	o.WarmFill = 0.91
	if o.Validate() == nil {
		t.Fatal("WarmFill 0.91 accepted")
	}
	o.WarmFill = -0.1
	if o.Validate() == nil {
		t.Fatal("negative WarmFill accepted")
	}
	o.WarmFill = 0.9
	if err := o.Validate(); err != nil {
		t.Fatalf("WarmFill 0.9 rejected: %v", err)
	}
}

func TestDDR31600EnergyPlausible(t *testing.T) {
	e := DDR31600Energy()
	for name, v := range map[string]float64{
		"ACT": e.ACT, "PRE": e.PRE, "RD": e.RD, "WR": e.WR,
		"REF": e.REF, "BackgroundW": e.BackgroundW, "CycleNS": e.CycleNS,
	} {
		if v <= 0 {
			t.Errorf("energy parameter %s = %v, want positive", name, v)
		}
	}
	// tCK of DDR3-1600 is 1.25 ns.
	if e.CycleNS != 1.25 {
		t.Errorf("CycleNS = %v, want 1.25", e.CycleNS)
	}
}

func TestRingConfigSEqualsAPlus(t *testing.T) {
	for _, rc := range Fig4Configs() {
		if rc.S != rc.A+rc.X {
			t.Errorf("%s: S=%d != A+X=%d", rc.Name, rc.S, rc.A+rc.X)
		}
	}
}

func TestCacheSets(t *testing.T) {
	c := Cache{SizeBytes: 4 << 20, LineSize: 64, Ways: 16}
	if got := c.Sets(); got != 4096 {
		t.Fatalf("Sets = %d, want 4096", got)
	}
}
