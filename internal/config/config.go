// Package config defines the parameter sets for every component of the
// String ORAM simulator and carries the presets used by the paper's
// evaluation (Tables I-III, the Fig. 4 Ring ORAM configurations, and the
// Table V Compact Bucket configurations).
//
// All sizes are in bytes and all times in memory-controller clock cycles
// unless a field says otherwise.
package config

import (
	"errors"
	"fmt"
)

// ORAM holds the Ring ORAM / String ORAM protocol parameters (paper
// Table III plus the CB extension).
type ORAM struct {
	// Z is the number of real block slots per bucket.
	Z int
	// S is the nominal number of dummy block slots per bucket. With the
	// Compact Bucket scheme the bucket physically reserves only S-Y dummy
	// slots but still supports S accesses between reshuffles.
	S int
	// Y is the CB rate: how many real blocks per bucket may be consumed
	// as dummies ("green blocks") during read path operations. Y = 0
	// disables Compact Bucket and yields baseline Ring ORAM.
	Y int
	// A is the eviction rate: one eviction is issued after every A read
	// path operations (Ring ORAM's deterministic reverse-lexicographic
	// eviction order).
	A int
	// Levels is the number of tree levels L+1; the root is level 0 and
	// leaves are at level L = Levels-1.
	Levels int
	// TreeTopCacheLevels is how many levels from the root are cached in
	// the on-chip controller and never generate DRAM traffic.
	TreeTopCacheLevels int
	// BlockSize is the data block size in bytes (one cache line).
	BlockSize int
	// StashSize is the stash capacity in blocks.
	StashSize int
	// BackgroundEvictThreshold is the stash occupancy (in blocks) at
	// which background eviction engages. Zero means "90% of StashSize".
	BackgroundEvictThreshold int
	// WarmFill models a steady-state-loaded tree: each lazily
	// materialized bucket starts with synthetic resident real blocks —
	// leaves hold Binomial(Z, WarmFill) blocks, interior buckets one
	// block with probability WarmFill — and a uniformly random phase
	// within its reshuffle period (pre-consumed dummy/green budget),
	// instead of starting empty and fresh. The paper's evaluation
	// assumes a memory full of real data in steady state (that is what
	// Compact Bucket borrows for obfuscation); 0 disables warming.
	WarmFill float64
	// UniformSelect switches read-path dummy selection from the default
	// dummy-first policy (reserved dummies are spent before green
	// blocks — the behaviour the paper's modest green-blocks-per-read
	// measurements imply, and the stash-thrifty choice) to a uniform
	// choice among all valid selectable slots.
	UniformSelect bool
}

// L returns the leaf level index (levels are 0..L).
func (o ORAM) L() int { return o.Levels - 1 }

// Buckets returns the total number of buckets in the tree: 2^Levels - 1.
func (o ORAM) Buckets() int64 { return (int64(1) << uint(o.Levels)) - 1 }

// Leaves returns the number of leaves (and therefore paths): 2^L.
func (o ORAM) Leaves() int64 { return int64(1) << uint(o.L()) }

// SlotsPerBucket returns the number of physical block slots per bucket,
// accounting for the Compact Bucket reduction.
func (o ORAM) SlotsPerBucket() int { return o.Z + o.S - o.Y }

// ReservedDummies returns the number of physical dummy slots per bucket.
func (o ORAM) ReservedDummies() int { return o.S - o.Y }

// RealCapacityBytes returns the bytes devoted to real block slots.
func (o ORAM) RealCapacityBytes() int64 {
	return o.Buckets() * int64(o.Z) * int64(o.BlockSize)
}

// DummyCapacityBytes returns the bytes devoted to reserved dummy slots.
func (o ORAM) DummyCapacityBytes() int64 {
	return o.Buckets() * int64(o.ReservedDummies()) * int64(o.BlockSize)
}

// TotalCapacityBytes returns the full ORAM tree footprint in memory.
func (o ORAM) TotalCapacityBytes() int64 {
	return o.Buckets() * int64(o.SlotsPerBucket()) * int64(o.BlockSize)
}

// SpaceEfficiency returns the fraction of the tree footprint that stores
// real blocks (the paper's "memory space efficiency").
func (o ORAM) SpaceEfficiency() float64 {
	return float64(o.Z) / float64(o.SlotsPerBucket())
}

// DummyPercentage returns the fraction of the footprint that is reserved
// dummy slots, as reported in Table V.
func (o ORAM) DummyPercentage() float64 {
	return float64(o.ReservedDummies()) / float64(o.SlotsPerBucket())
}

// EvictThreshold returns the effective background-eviction trigger level.
func (o ORAM) EvictThreshold() int {
	if o.BackgroundEvictThreshold > 0 {
		return o.BackgroundEvictThreshold
	}
	return o.StashSize * 9 / 10
}

// Validate reports whether the ORAM parameters are internally consistent.
func (o ORAM) Validate() error {
	switch {
	case o.Z <= 0:
		return fmt.Errorf("config: Z must be positive, got %d", o.Z)
	case o.S <= 0:
		return fmt.Errorf("config: S must be positive, got %d", o.S)
	case o.Y < 0 || o.Y > o.S:
		return fmt.Errorf("config: Y must be in [0, S=%d], got %d", o.S, o.Y)
	case o.Y > o.Z:
		return fmt.Errorf("config: Y (%d) cannot exceed Z (%d): a bucket cannot lend more green blocks than it has real slots", o.Y, o.Z)
	case o.A <= 0:
		return fmt.Errorf("config: A must be positive, got %d", o.A)
	case o.S < o.A:
		// Ring ORAM requires S = A + X with X >= 0 so that early
		// reshuffles stay rare.
		return fmt.Errorf("config: S (%d) must be >= A (%d)", o.S, o.A)
	case o.Levels < 2 || o.Levels > 40:
		return fmt.Errorf("config: Levels must be in [2, 40], got %d", o.Levels)
	case o.TreeTopCacheLevels < 0 || o.TreeTopCacheLevels >= o.Levels:
		return fmt.Errorf("config: TreeTopCacheLevels must be in [0, Levels), got %d", o.TreeTopCacheLevels)
	case o.BlockSize <= 0 || o.BlockSize&(o.BlockSize-1) != 0:
		return fmt.Errorf("config: BlockSize must be a positive power of two, got %d", o.BlockSize)
	case o.StashSize <= 0:
		return fmt.Errorf("config: StashSize must be positive, got %d", o.StashSize)
	case o.BackgroundEvictThreshold < 0 || o.BackgroundEvictThreshold > o.StashSize:
		return fmt.Errorf("config: BackgroundEvictThreshold must be in [0, StashSize], got %d", o.BackgroundEvictThreshold)
	case o.WarmFill < 0 || o.WarmFill > 0.9:
		return fmt.Errorf("config: WarmFill must be in [0, 0.9], got %v", o.WarmFill)
	}
	return nil
}

// DRAMTiming holds the JEDEC-style timing constraints of the device, in
// memory-controller clock cycles. Defaults follow DDR3-1600 (tCK=1.25ns).
type DRAMTiming struct {
	CL   int // CAS latency: RD to first data beat
	CWL  int // CAS write latency: WR to first data beat
	TRCD int // ACT to RD/WR on the same bank
	TRP  int // PRE to ACT on the same bank
	TRAS int // ACT to PRE on the same bank
	TRC  int // ACT to ACT on the same bank
	TCCD int // column command to column command, same rank
	TRRD int // ACT to ACT across banks, same rank
	TFAW int // window for at most four ACTs, same rank
	TWTR int // end of write data to read command, same rank
	TWR  int // end of write data to PRE, same bank
	TRTP int // RD to PRE, same bank
	TBUS int // data burst duration on the bus (BL8 on DDR => 4 cycles)
	TRFC int // refresh command duration
	REFI int // average refresh interval
}

// DRAMEnergy holds per-operation DRAM energies in nanojoules plus the
// background power, for first-order energy accounting (IDD-derived
// DDR3-1600 x8 ballpark values).
type DRAMEnergy struct {
	ACT         float64 // row activation (includes the eventual restore)
	PRE         float64 // precharge
	RD          float64 // read burst
	WR          float64 // write burst
	REF         float64 // one refresh command
	BackgroundW float64 // background power per rank, watts
	CycleNS     float64 // memory-controller cycle time, nanoseconds
}

// DDR31600Energy returns first-order DDR3-1600 energy parameters.
func DDR31600Energy() DRAMEnergy {
	return DRAMEnergy{
		ACT: 15.0, PRE: 5.0, RD: 13.0, WR: 13.0, REF: 48.0,
		BackgroundW: 0.10, CycleNS: 1.25,
	}
}

// DDR31600Timing returns DDR3-1600K timing in 800MHz cycles.
func DDR31600Timing() DRAMTiming {
	return DRAMTiming{
		CL: 11, CWL: 8,
		TRCD: 11, TRP: 11, TRAS: 28, TRC: 39,
		TCCD: 4, TRRD: 5, TFAW: 24,
		TWTR: 6, TWR: 12, TRTP: 6,
		TBUS: 4,
		TRFC: 208, REFI: 6240,
	}
}

// Validate reports whether the timing constraints are plausible.
func (t DRAMTiming) Validate() error {
	type c struct {
		name string
		v    int
	}
	for _, x := range []c{
		{"CL", t.CL}, {"CWL", t.CWL}, {"TRCD", t.TRCD}, {"TRP", t.TRP},
		{"TRAS", t.TRAS}, {"TRC", t.TRC}, {"TCCD", t.TCCD}, {"TRRD", t.TRRD},
		{"TFAW", t.TFAW}, {"TWTR", t.TWTR}, {"TWR", t.TWR}, {"TRTP", t.TRTP},
		{"TBUS", t.TBUS}, {"TRFC", t.TRFC}, {"REFI", t.REFI},
	} {
		if x.v <= 0 {
			return fmt.Errorf("config: DRAM timing %s must be positive, got %d", x.name, x.v)
		}
	}
	if t.TRC < t.TRAS+t.TRP {
		return fmt.Errorf("config: tRC (%d) must be >= tRAS+tRP (%d)", t.TRC, t.TRAS+t.TRP)
	}
	return nil
}

// PagePolicy selects the row-buffer management policy.
type PagePolicy int

const (
	// OpenPage keeps rows open after column commands (the paper's
	// assumption; subtree layout exists to exploit it).
	OpenPage PagePolicy = iota
	// ClosePage precharges a bank as soon as no queued request wants
	// its open row (an ablation knob).
	ClosePage
)

// String implements fmt.Stringer.
func (p PagePolicy) String() string {
	switch p {
	case OpenPage:
		return "open-page"
	case ClosePage:
		return "close-page"
	default:
		return fmt.Sprintf("PagePolicy(%d)", int(p))
	}
}

// DRAM holds the memory-system organization (paper Table II).
type DRAM struct {
	Channels    int
	Ranks       int // per channel
	Banks       int // per rank
	Rows        int // per bank
	Columns     int // cache lines per row
	ReadQueue   int // entries per channel
	WriteQueue  int // entries per channel
	Timing      DRAMTiming
	CPUClockMul int // CPU cycles per memory cycle (3.2GHz over 800MHz = 4)
	// Policy is the row-buffer management policy (default OpenPage).
	Policy PagePolicy
	// StarvationLimit caps FR-FCFS reordering: once the oldest pending
	// request of the current transaction has waited this many cycles,
	// the controller serves it before younger row hits. 0 disables the
	// guard (pure FR-FCFS; transaction barriers already bound waiting).
	StarvationLimit int
}

// RowBytes returns the row-buffer capacity in bytes for blockSize-byte lines.
func (d DRAM) RowBytes(blockSize int) int64 {
	return int64(d.Columns) * int64(blockSize)
}

// CapacityBytes returns the total DRAM capacity for blockSize-byte lines.
func (d DRAM) CapacityBytes(blockSize int) int64 {
	return int64(d.Channels) * int64(d.Ranks) * int64(d.Banks) *
		int64(d.Rows) * d.RowBytes(blockSize)
}

// TotalBanks returns the number of independently schedulable banks.
func (d DRAM) TotalBanks() int { return d.Channels * d.Ranks * d.Banks }

// Validate reports whether the organization is internally consistent.
func (d DRAM) Validate() error {
	for _, x := range []struct {
		name string
		v    int
	}{
		{"Channels", d.Channels}, {"Ranks", d.Ranks}, {"Banks", d.Banks},
		{"Rows", d.Rows}, {"Columns", d.Columns},
		{"ReadQueue", d.ReadQueue}, {"WriteQueue", d.WriteQueue},
		{"CPUClockMul", d.CPUClockMul},
	} {
		if x.v <= 0 {
			return fmt.Errorf("config: DRAM %s must be positive, got %d", x.name, x.v)
		}
	}
	for _, x := range []struct {
		name string
		v    int
	}{
		{"Channels", d.Channels}, {"Ranks", d.Ranks}, {"Banks", d.Banks},
		{"Rows", d.Rows}, {"Columns", d.Columns},
	} {
		if x.v&(x.v-1) != 0 {
			return fmt.Errorf("config: DRAM %s must be a power of two for address bit slicing, got %d", x.name, x.v)
		}
	}
	return d.Timing.Validate()
}

// CPU holds the processor-side parameters (paper Table I).
type CPU struct {
	Cores       int
	ROBSize     int // in-flight instruction window per core
	RetireWidth int // instructions retired per CPU cycle
	MaxMisses   int // outstanding LLC misses per core (MSHR-like limit)
}

// Validate reports whether the CPU parameters are plausible.
func (c CPU) Validate() error {
	switch {
	case c.Cores <= 0:
		return fmt.Errorf("config: Cores must be positive, got %d", c.Cores)
	case c.ROBSize <= 0:
		return fmt.Errorf("config: ROBSize must be positive, got %d", c.ROBSize)
	case c.RetireWidth <= 0:
		return fmt.Errorf("config: RetireWidth must be positive, got %d", c.RetireWidth)
	case c.MaxMisses <= 0:
		return fmt.Errorf("config: MaxMisses must be positive, got %d", c.MaxMisses)
	}
	return nil
}

// Cache holds the shared last-level cache parameters.
type Cache struct {
	SizeBytes int64
	LineSize  int
	Ways      int
}

// Sets returns the number of cache sets.
func (c Cache) Sets() int64 {
	return c.SizeBytes / (int64(c.LineSize) * int64(c.Ways))
}

// Validate reports whether the cache geometry is consistent.
func (c Cache) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("config: cache SizeBytes must be positive, got %d", c.SizeBytes)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("config: cache LineSize must be a positive power of two, got %d", c.LineSize)
	case c.Ways <= 0:
		return fmt.Errorf("config: cache Ways must be positive, got %d", c.Ways)
	}
	sets := c.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("config: cache sets must be a positive power of two, got %d", sets)
	}
	return nil
}

// SchedulerKind selects the memory-controller command scheduling policy.
type SchedulerKind int

const (
	// SchedTransaction is the baseline transaction-based scheduler
	// (paper Algorithm 1): every command of ORAM access i issues before
	// any command of access i+1.
	SchedTransaction SchedulerKind = iota
	// SchedProactiveBank is the PB scheduler (paper Algorithm 2):
	// PRE/ACT of access i+1 may issue early on inter-transaction
	// row-buffer conflicts.
	SchedProactiveBank
)

// String implements fmt.Stringer.
func (k SchedulerKind) String() string {
	switch k {
	case SchedTransaction:
		return "transaction"
	case SchedProactiveBank:
		return "proactive-bank"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(k))
	}
}

// LayoutKind selects the ORAM-tree-to-physical-address mapping.
type LayoutKind int

const (
	// LayoutSubtree is the subtree layout of Ren et al. [19] (the
	// paper's default): h-level subtrees packed into row buffers.
	LayoutSubtree LayoutKind = iota
	// LayoutFlat stores buckets in plain heap order (an ablation knob
	// showing what the subtree layout buys).
	LayoutFlat
)

// String implements fmt.Stringer.
func (k LayoutKind) String() string {
	switch k {
	case LayoutSubtree:
		return "subtree"
	case LayoutFlat:
		return "flat"
	default:
		return fmt.Sprintf("LayoutKind(%d)", int(k))
	}
}

// System bundles the full simulator configuration.
type System struct {
	ORAM      ORAM
	DRAM      DRAM
	CPU       CPU
	Cache     Cache
	Scheduler SchedulerKind
	Layout    LayoutKind
	Seed      uint64
}

// Validate checks every sub-configuration and the cross-component
// constraint that the ORAM tree fits in DRAM.
func (s System) Validate() error {
	if err := s.ORAM.Validate(); err != nil {
		return err
	}
	if err := s.DRAM.Validate(); err != nil {
		return err
	}
	if err := s.CPU.Validate(); err != nil {
		return err
	}
	if err := s.Cache.Validate(); err != nil {
		return err
	}
	if s.Scheduler != SchedTransaction && s.Scheduler != SchedProactiveBank {
		return errors.New("config: unknown scheduler kind")
	}
	if s.Layout != LayoutSubtree && s.Layout != LayoutFlat {
		return errors.New("config: unknown layout kind")
	}
	if s.DRAM.Policy != OpenPage && s.DRAM.Policy != ClosePage {
		return errors.New("config: unknown page policy")
	}
	if s.Cache.LineSize != s.ORAM.BlockSize {
		return fmt.Errorf("config: cache line size (%d) must equal ORAM block size (%d)", s.Cache.LineSize, s.ORAM.BlockSize)
	}
	need := s.ORAM.TotalCapacityBytes()
	have := s.DRAM.CapacityBytes(s.ORAM.BlockSize)
	if need > have {
		return fmt.Errorf("config: ORAM tree needs %d bytes but DRAM only has %d", need, have)
	}
	return nil
}

// Default returns the paper's default String ORAM system configuration
// (Tables I, II and III): Z=8, S=12, Y=8, 24 levels, 6 cached levels,
// stash 500, DDR3-1600 with 4 channels x 1 rank x 8 banks.
func Default() System {
	return System{
		ORAM: ORAM{
			Z: 8, S: 12, Y: 8, A: 8,
			Levels:             24,
			TreeTopCacheLevels: 6,
			BlockSize:          64,
			StashSize:          500,
		},
		DRAM: DRAM{
			Channels: 4, Ranks: 1, Banks: 8,
			// Paper Table II says 16384 rows and 128 columns, which
			// yields only 1 GB/channel; we keep 128 columns (8 KB
			// rows) and raise rows to 2^17 so a channel genuinely
			// holds 8 GB as the table's capacity line requires.
			Rows: 1 << 17, Columns: 128,
			ReadQueue: 64, WriteQueue: 64,
			Timing:      DDR31600Timing(),
			CPUClockMul: 4,
		},
		CPU: CPU{
			Cores: 4, ROBSize: 128, RetireWidth: 4, MaxMisses: 8,
		},
		Cache: Cache{
			SizeBytes: 4 << 20, LineSize: 64, Ways: 16,
		},
		Scheduler: SchedTransaction,
		Seed:      0x57524e47, // "WRNG"
	}
}

// RingConfig is one of the bandwidth-optimal Ring ORAM parameter points
// from the paper's Fig. 4 (derived from Ren et al., USENIX Security'15).
type RingConfig struct {
	Name string
	Z    int
	A    int
	X    int // S = A + X
	S    int
}

// Fig4Configs returns the four Ring ORAM configurations of Fig. 4.
func Fig4Configs() []RingConfig {
	return []RingConfig{
		{Name: "Config-1", Z: 4, A: 3, X: 2, S: 5},
		{Name: "Config-2", Z: 8, A: 8, X: 4, S: 12},
		{Name: "Config-3", Z: 16, A: 20, X: 7, S: 27},
		{Name: "Config-4", Z: 32, A: 46, X: 12, S: 58},
	}
}

// ORAMForRing builds an ORAM config for a Fig. 4 Ring configuration at the
// paper's L=23 (24 levels), 64 B blocks.
func ORAMForRing(rc RingConfig) ORAM {
	return ORAM{
		Z: rc.Z, S: rc.S, Y: 0, A: rc.A,
		Levels:             24,
		TreeTopCacheLevels: 6,
		BlockSize:          64,
		StashSize:          500,
	}
}

// CBConfig is one of the Table V Compact Bucket configurations.
type CBConfig struct {
	Name string
	Y    int
}

// TableVConfigs returns the five CB configurations of Table V / Fig. 13.
// "Baseline" is Y=0, Config-4 (Y=8) is the paper default.
func TableVConfigs() []CBConfig {
	return []CBConfig{
		{Name: "Baseline", Y: 0},
		{Name: "Config-1", Y: 2},
		{Name: "Config-2", Y: 4},
		{Name: "Config-3", Y: 6},
		{Name: "Config-4", Y: 8},
	}
}

// WithCBRate returns a copy of the system with the CB rate set to y.
func (s System) WithCBRate(y int) System {
	s.ORAM.Y = y
	return s
}

// WithScheduler returns a copy of the system with the given scheduler.
func (s System) WithScheduler(k SchedulerKind) System {
	s.Scheduler = k
	return s
}

// WithStashSize returns a copy of the system with the given stash capacity.
func (s System) WithStashSize(n int) System {
	s.ORAM.StashSize = n
	return s
}

// WithLayout returns a copy of the system with the given address layout.
func (s System) WithLayout(k LayoutKind) System {
	s.Layout = k
	return s
}

// WithPagePolicy returns a copy of the system with the given row-buffer
// policy.
func (s System) WithPagePolicy(p PagePolicy) System {
	s.DRAM.Policy = p
	return s
}

// ScaledDefault returns the default configuration shrunk to a tree of the
// given number of levels so that unit and integration tests run fast while
// exercising identical code paths. DRAM is shrunk proportionally.
func ScaledDefault(levels int) System {
	s := Default()
	s.ORAM.Levels = levels
	if levels <= s.ORAM.TreeTopCacheLevels+2 {
		s.ORAM.TreeTopCacheLevels = levels / 3
	}
	// Shrink rows so the address space stays dense but sufficient.
	need := s.ORAM.TotalCapacityBytes()
	rowBytes := s.DRAM.RowBytes(s.ORAM.BlockSize)
	perChan := int64(s.DRAM.Ranks) * int64(s.DRAM.Banks) * rowBytes
	rows := int64(1)
	for rows*perChan*int64(s.DRAM.Channels) < need*2 {
		rows <<= 1
	}
	if rows < 4 {
		rows = 4
	}
	s.DRAM.Rows = int(rows)
	s.Cache.SizeBytes = 64 << 10
	return s
}
