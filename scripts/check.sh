#!/usr/bin/env bash
# check.sh — the CI gate. Everything a PR must pass before merge:
# vet, build, the full test suite, and the race detector over the
# packages with scheduler/simulator concurrency-sensitive state.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (sched, sim, experiments) =="
go test -race ./internal/sched ./internal/sim ./internal/experiments

echo "check.sh: all gates passed"
