#!/usr/bin/env bash
# check.sh — the CI gate. Everything a PR must pass before merge:
# formatting, vet, the project linters (oramlint), build, the full test
# suite in both build flavors (default and -tags=invariants), the race
# detector over the packages with scheduler/simulator
# concurrency-sensitive state, and a short fuzz smoke of the trace codec.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== oramlint (default + invariants configs) =="
# The driver lints both build configurations in one run (it merges
# findings and cross-checks allow staleness per config); time it so
# analyzer cost regressions are visible in the check output.
lint_start=$(date +%s%N)
go run ./cmd/oramlint ./...
lint_end=$(date +%s%N)
echo "oramlint wall time: $(( (lint_end - lint_start) / 1000000 )) ms"

echo "== analyzer fixture tests (taint engine, timing, ownership, driver) =="
go test -count=1 ./internal/analysis ./cmd/oramlint

echo "== go test =="
go test ./...

echo "== go test -tags=invariants =="
go test -tags=invariants ./...

echo "== go test -race (sched, sim, experiments) =="
go test -race ./internal/sched ./internal/sim ./internal/experiments

echo "== go test -race (server stress: 64 clients x 4 shards) =="
go test -race ./internal/server ./internal/cluster ./cmd/oramd

echo "== cluster chaos gate (kill one of 3 nodes under 64 writers, -race) =="
go test -race -count=1 -run='^TestClusterKillOneNodeChaos$' ./internal/cluster

echo "== SLO chaos gate (post-kill p99 objective on the survivors, -race) =="
go test -race -count=1 -run='^TestClusterChaosSLO$' ./internal/cluster

echo "== obs-race gate (cluster scrapes + stitched trace under traced load, -race) =="
go test -race -count=1 -run='^(TestClusterScrapeUnderLoad|TestClusterStitchedForwardTrace)$' \
    ./internal/cluster

echo "== pipeline race stress (64 pipelined clients x 4 shards x k=8) =="
go test -race -count=1 -run='^(TestPipelineRaceStress|TestServerPipelineStress)$' \
    ./internal/oram ./internal/server

echo "== pipeline golden equivalence (serial vs k in-flight) =="
go test -count=1 \
    -run='^(TestPipelineSerialEquivalence|TestPipelineInterleavedDrain|TestServerPipelineSerialEquivalence|TestGolden)' \
    ./internal/oram ./internal/server

echo "== treetop cache equivalence (serial + pipelined vs uncached oracle, -race) =="
# Covers compact/XOR/plaintext x depths incl. the shared worker pool: the
# cached controller must return identical data, op traces, and snapshot
# bytes, and elide exactly the cached levels from the store trace.
go test -race -count=1 -run='^TestTreetop' ./internal/oram

echo "== alloc-regression guards (data-plane hot path) =="
go test -run='^TestAllocFree' -count=1 ./internal/oram ./internal/cluster

echo "== observability gate (alloc guards, Perfetto schema, exposition parse) =="
go test -count=1 \
    -run='^(TestAllocFreeInstrumentedAccess|TestInstrumentUpdatesAllocFree|TestRecorderEmitAllocFree|TestWriteTracePerfettoShape|TestWritePrometheusFormatAndDeterminism|TestValidateExpositionRejectsGarbage|TestMetricsScrapeAllocBound|TestAllocFreeTracedUnsampled)$' \
    ./internal/obs ./internal/oram ./internal/server

echo "== examples/server smoke =="
go run ./examples/server >/dev/null

echo "== fuzz smoke (trace codec) =="
go test -run='^$' -fuzz=FuzzReadCodec -fuzztime=5s ./internal/trace

echo "== fuzz smoke (seal/open equivalence) =="
go test -run='^$' -fuzz=FuzzSealIntoMatchesLegacy -fuzztime=5s ./internal/oram

echo "check.sh: all gates passed"
