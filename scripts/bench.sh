#!/usr/bin/env bash
# bench.sh — record the scheduler-perf trajectory.
#
# Runs the memory-controller microbenchmarks and the Fig. 10 end-to-end
# benchmark, then appends one labelled entry (ns/op, allocs/op per
# benchmark) to BENCH_sched.json at the repo root. Later PRs run this
# again to see whether the hot path got faster or slower.
#
# Usage: scripts/bench.sh [label]   (default label: git short hash)
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
out=BENCH_sched.json
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== scheduler microbenchmarks =="
go test -run '^$' -bench 'BenchmarkSchedTick$|BenchmarkControllerTransaction$|BenchmarkControllerPB$' \
    -benchmem -benchtime 2s ./internal/sched | tee -a "$tmp"

echo "== Fig. 10 end-to-end benchmark =="
go test -run '^$' -bench 'BenchmarkFig10ExecutionTime$' -benchmem -benchtime 5x . | tee -a "$tmp"

python3 - "$label" "$tmp" "$out" <<'EOF'
import json, re, sys

label, raw_path, out_path = sys.argv[1], sys.argv[2], sys.argv[3]
benches = {}
pat = re.compile(
    r'^(Benchmark\w+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s(\d+) B/op\s+(\d+) allocs/op)?')
for line in open(raw_path):
    m = pat.match(line.strip())
    if not m:
        continue
    entry = {"ns_per_op": float(m.group(2))}
    if m.group(4) is not None:
        entry["bytes_per_op"] = int(m.group(3))
        entry["allocs_per_op"] = int(m.group(4))
    benches[m.group(1)] = entry

try:
    runs = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    runs = []
runs.append({"label": label, "benchmarks": benches})
json.dump(runs, open(out_path, "w"), indent=2)
print(f"appended run {label!r} with {len(benches)} benchmarks to {out_path}")
EOF
