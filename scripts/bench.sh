#!/usr/bin/env bash
# bench.sh — record the perf trajectory.
#
# Runs one of the benchmark groups and appends one labelled entry
# (ns/op, allocs/op per benchmark) to the group's JSON file at the repo
# root. Later PRs run this again to see whether the hot path got faster
# or slower.
#
#   sched  memory-controller microbenchmarks + the Fig. 10 end-to-end
#          benchmark                          -> BENCH_sched.json
#   oram   ORAM data-plane hot path (seal, functional access, XOR
#          decode, eviction) and the serving layer -> BENCH_oram.json
#   obs    instrumented-vs-disabled pairs for the hot paths; the entry
#          also records the derived overhead percentages (budget: <=5%)
#                                               -> BENCH_obs.json
#   trace  tracing tax on the serving hot path: untraced baseline vs
#          context-attached-unsampled vs sampled-every-request; derived
#          overhead percentages ride the entry (budget: <=5% sampled)
#                                               -> BENCH_obs.json
#   server pipelined serving throughput: the serial shard worker vs the
#          concurrent controller at k in {1,2,4,8} in-flight accesses;
#          entries carry ops/s and the server's own p99 request latency
#                                               -> BENCH_server.json
#   cores  multi-core scaling curve: serial vs pipelined shard serving
#          (k=8, shared worker pool) at GOMAXPROCS in {1,2,4,8}
#                                               -> BENCH_server.json
#   cluster multi-node serving: replicated write throughput through the
#          router and the one-hop forward path, each with the
#          client-observed p99                  -> BENCH_server.json
#
# Every entry is stamped with the exact commit, GOMAXPROCS, and an ISO
# UTC timestamp, so a BENCH_*.json row is attributable without the
# shell history that produced it.
#
# Usage: scripts/bench.sh [label] [group]
#   label  entry label (default: git short hash)
#   group  sched | oram | obs | trace | server | cores | cluster
#          (default: sched)
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
group="${2:-sched}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

case "$group" in
sched)
	out=BENCH_sched.json
	echo "== scheduler microbenchmarks =="
	go test -run '^$' -bench 'BenchmarkSchedTick$|BenchmarkControllerTransaction$|BenchmarkControllerPB$' \
	    -benchmem -benchtime 2s ./internal/sched | tee -a "$tmp"

	echo "== Fig. 10 end-to-end benchmark =="
	go test -run '^$' -bench 'BenchmarkFig10ExecutionTime$' -benchmem -benchtime 5x . | tee -a "$tmp"
	;;
oram)
	out=BENCH_oram.json
	echo "== ORAM data-plane microbenchmarks =="
	go test -run '^$' -bench 'BenchmarkSeal$|BenchmarkAccessFunctional$|BenchmarkAccessFunctionalCached$|BenchmarkAccessTimingOnly$|BenchmarkEvictPath$' \
	    -benchmem -benchtime 2s ./internal/oram | tee -a "$tmp"

	echo "== XOR-technique functional read benchmark =="
	go test -run '^$' -bench 'BenchmarkXORDecode$' -benchmem -benchtime 2s . | tee -a "$tmp"

	echo "== serving-layer benchmarks =="
	go test -run '^$' -bench 'BenchmarkServerGetPut$|BenchmarkWireRoundTrip$' \
	    -benchmem -benchtime 2s ./internal/server | tee -a "$tmp"
	;;
obs)
	out=BENCH_obs.json
	echo "== scheduler tick: disabled vs instrumented =="
	go test -run '^$' -bench 'BenchmarkSchedTick$|BenchmarkSchedTickObs$' \
	    -benchmem -benchtime 2s ./internal/sched | tee -a "$tmp"

	echo "== functional access: disabled vs instrumented =="
	go test -run '^$' -bench 'BenchmarkAccessFunctional$|BenchmarkAccessFunctionalObs$' \
	    -benchmem -benchtime 2s ./internal/oram | tee -a "$tmp"
	;;
trace)
	out=BENCH_obs.json
	echo "== serving hot path: untraced vs traced-unsampled vs traced-sampled =="
	go test -run '^$' -bench 'BenchmarkServerGetPut$|BenchmarkServerGetPutTraced$|BenchmarkServerGetPutTracedSampled$' \
	    -benchmem -benchtime 2s ./internal/server | tee -a "$tmp"
	;;
server)
	out=BENCH_server.json
	echo "== pipelined serving throughput: serial vs k in-flight =="
	go test -run '^$' -bench 'BenchmarkServerThroughput(Serial|K1|K2|K4|K8)$' \
	    -benchmem -benchtime 2s ./internal/server | tee -a "$tmp"
	;;
cores)
	out=BENCH_server.json
	echo "== multi-core scaling curve: serial vs pipelined at GOMAXPROCS 1/2/4/8 =="
	# Each point is its own benchmark name (the GOMAXPROCS is set inside
	# the benchmark), so one run records the whole curve.
	go test -run '^$' -bench 'BenchmarkServerCores(Serial|Pipelined)(1|2|4|8)$' \
	    -benchmem -benchtime 2s ./internal/server | tee -a "$tmp"
	;;
cluster)
	out=BENCH_server.json
	echo "== cluster serving: replicated writes + forward hop (3 nodes x 2 shards) =="
	go test -run '^$' -bench 'BenchmarkCluster(RouterPut|ForwardHop)$' \
	    -benchmem -benchtime 2s ./internal/cluster | tee -a "$tmp"
	;;
*)
	echo "bench.sh: unknown group '$group' (want sched, oram, obs, trace, server, cores, or cluster)" >&2
	exit 1
	;;
esac

commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

python3 - "$label" "$tmp" "$out" "$commit" "$stamp" <<'EOF'
import json, os, re, sys

label, raw_path, out_path, commit, stamp = sys.argv[1:6]
benches = {}
pat = re.compile(
    r'^(Benchmark\w+)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:.*?\s(\d+) B/op\s+(\d+) allocs/op)?')
for line in open(raw_path):
    m = pat.match(line.strip())
    if not m:
        continue
    entry = {"ns_per_op": float(m.group(2))}
    if m.group(4) is not None:
        entry["bytes_per_op"] = int(m.group(3))
        entry["allocs_per_op"] = int(m.group(4))
    # Throughput benchmarks report the server's own p99 request latency
    # as a custom metric; surface it plus the derived ops/s.
    pm = re.search(r'([\d.]+(?:e[+-]?\d+)?) p99-ns', line)
    if pm:
        entry["p99_ns"] = float(pm.group(1))
        if entry["ns_per_op"] > 0:
            entry["ops_per_sec"] = round(1e9 / entry["ns_per_op"], 1)
    benches[m.group(1)] = entry

try:
    runs = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    runs = []
# GOMAXPROCS defaults to the CPU count when the env var is unset —
# mirror Go's own resolution so the stamp reflects what the run used.
entry = {
    "label": label,
    "commit": commit,
    "timestamp": stamp,
    "gomaxprocs": int(os.environ.get("GOMAXPROCS") or os.cpu_count() or 1),
    "benchmarks": benches,
}
# For instrumented-vs-disabled pairs (the obs and trace groups), record
# the derived overhead so the <=5% budget is auditable straight from the
# JSON. Obs pairs key by the disabled baseline's name; traced pairs key
# by the traced benchmark (both compare against the plain baseline).
overhead = {}
for name, bench in benches.items():
    if name.endswith("Obs"):
        base, key = benches.get(name[:-3]), name[:-3]
    elif name.endswith("TracedSampled"):
        base, key = benches.get(name[: -len("TracedSampled")]), name
    elif name.endswith("Traced"):
        base, key = benches.get(name[: -len("Traced")]), name
    else:
        continue
    if base and base["ns_per_op"] > 0:
        pct = 100.0 * (bench["ns_per_op"] - base["ns_per_op"]) / base["ns_per_op"]
        overhead[key] = round(pct, 2)
if overhead:
    entry["obs_overhead_pct"] = overhead
runs.append(entry)
json.dump(runs, open(out_path, "w"), indent=2)
print(f"appended run {label!r} with {len(benches)} benchmarks to {out_path}")
for base, pct in sorted(overhead.items()):
    print(f"  obs overhead on {base}: {pct:+.2f}% (budget: <=5%)")
EOF
