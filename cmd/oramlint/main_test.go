package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestAnalyzersFor(t *testing.T) {
	cases := []struct {
		rel  string
		want []string
	}{
		{"internal/oram", []string{"determinism", "oblivious", "timing", "ownership", "telemetry"}},
		{"internal/server", []string{"oblivious", "timing", "ownership", "telemetry"}},
		{"internal/obs", []string{"determinism", "timing", "ownership", "telemetry"}},
		{"internal/sched", []string{"determinism"}},
		{"internal/sim", []string{"determinism"}},
		{"internal/dram", []string{"determinism"}},
		{"internal/experiments", []string{"determinism"}},
		{"internal/rng", []string{"determinism"}},
		{"internal/trace", []string{"determinism"}},
		{"internal/config", nil},
		{"internal/invariant", nil},
		{"internal/analysis", nil},
		{"cmd/oramlint", nil},
		{"cmd/stringoram", nil},
	}
	for _, c := range cases {
		got := analyzersFor(c.rel, nil)
		if len(got) != len(c.want) {
			t.Errorf("analyzersFor(%q) = %d analyzers, want %d", c.rel, len(got), len(c.want))
			continue
		}
		for i, a := range got {
			if a.Name != c.want[i] {
				t.Errorf("analyzersFor(%q)[%d] = %s, want %s", c.rel, i, a.Name, c.want[i])
			}
		}
	}
}

// TestAnalyzersForRules: the -rules selection filters the analyzer set.
func TestAnalyzersForRules(t *testing.T) {
	got := analyzersFor("internal/oram", map[string]bool{"timing": true})
	if len(got) != 1 || got[0].Name != "timing" {
		t.Fatalf("rules filter: got %d analyzers, want exactly [timing]", len(got))
	}
	if got := analyzersFor("internal/rng", map[string]bool{"timing": true}); len(got) != 0 {
		t.Fatalf("rules filter: internal/rng should have no timing analyzer, got %d", len(got))
	}
}

// TestRunSkipsUncheckedPackages: a pattern matching only packages
// outside the checked sets exits 0 without loading anything.
func TestRunSkipsUncheckedPackages(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"../../internal/invariant"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

// TestRunCheckedPackage runs a real simulation package through the
// driver; internal/rng is small and must stay clean (it exists to wrap
// seeded randomness).
func TestRunCheckedPackage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"../../internal/rng"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestRunJSON: -json over a clean package emits a well-formed array (the
// allow-suppressed findings of the package, if any, each carrying a
// non-empty justification).
func TestRunJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "../../internal/rng"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Rule == "" {
			t.Errorf("finding missing location/rule: %+v", f)
		}
		if !f.Allowed {
			t.Errorf("clean package reported a live finding: %+v", f)
		}
		if f.Allowed && f.Reason == "" {
			t.Errorf("allowed finding without justification: %+v", f)
		}
	}
}
