package main

import (
	"bytes"
	"testing"
)

func TestAnalyzersFor(t *testing.T) {
	cases := []struct {
		rel  string
		want []string
	}{
		{"internal/oram", []string{"determinism", "oblivious"}},
		{"internal/sched", []string{"determinism"}},
		{"internal/sim", []string{"determinism"}},
		{"internal/dram", []string{"determinism"}},
		{"internal/experiments", []string{"determinism"}},
		{"internal/rng", []string{"determinism"}},
		{"internal/trace", []string{"determinism"}},
		{"internal/config", nil},
		{"internal/invariant", nil},
		{"internal/analysis", nil},
		{"cmd/oramlint", nil},
		{"cmd/stringoram", nil},
	}
	for _, c := range cases {
		got := analyzersFor(c.rel)
		if len(got) != len(c.want) {
			t.Errorf("analyzersFor(%q) = %d analyzers, want %d", c.rel, len(got), len(c.want))
			continue
		}
		for i, a := range got {
			if a.Name != c.want[i] {
				t.Errorf("analyzersFor(%q)[%d] = %s, want %s", c.rel, i, a.Name, c.want[i])
			}
		}
	}
}

// TestRunSkipsUncheckedPackages: a pattern matching only packages
// outside the checked sets exits 0 without loading anything.
func TestRunSkipsUncheckedPackages(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"../../internal/invariant"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Fatalf("unexpected output: %q", out.String())
	}
}

// TestRunCheckedPackage runs a real simulation package through the
// driver; internal/rng is small and must stay clean (it exists to wrap
// seeded randomness).
func TestRunCheckedPackage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"../../internal/rng"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}
