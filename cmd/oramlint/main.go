// Command oramlint runs the project's static analyzers over module
// packages:
//
//	go run ./cmd/oramlint ./...
//
// Simulation packages are checked for determinism (seed-only
// reproducibility); internal/oram and internal/server are additionally
// checked for secret-dependent branching on address-emitting paths
// (internal/server anchors on its busOp bus-event type). Packages
// outside those sets are skipped. Exit status: 0 clean, 1 findings,
// 2 operational error (parse/type-check failure, bad pattern).
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stringoram/internal/analysis"
)

// determinismPkgs are the module-relative packages held to seed-only
// reproducibility: everything that executes during a simulation run or
// writes result artifacts.
var determinismPkgs = map[string]bool{
	"internal/obs":         true,
	"internal/oram":        true,
	"internal/sched":       true,
	"internal/dram":        true,
	"internal/sim":         true,
	"internal/experiments": true,
	"internal/rng":         true,
	"internal/trace":       true,
}

// obliviousPkgs maps each package whose address-emitting paths must not
// branch on secrets to its analyzer instantiation: the emit types are
// package-local, so each package anchors on its own bus-event type.
var obliviousPkgs = map[string]*analysis.Analyzer{
	"internal/oram":   analysis.DefaultOblivious,
	"internal/server": analysis.Oblivious([]string{"busOp"}, nil),
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// analyzersFor returns the analyzers that apply to one module-relative
// package path; an empty slice means the package is not checked.
func analyzersFor(rel string) []*analysis.Analyzer {
	var as []*analysis.Analyzer
	if determinismPkgs[rel] {
		as = append(as, analysis.Determinism)
	}
	if a := obliviousPkgs[rel]; a != nil {
		as = append(as, a)
	}
	return as
}

func run(args []string, out, errOut io.Writer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "oramlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(errOut, "oramlint:", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(errOut, "oramlint:", err)
		return 2
	}
	total := 0
	for _, dir := range dirs {
		rel, err := filepath.Rel(loader.ModuleDir, dir)
		if err != nil {
			fmt.Fprintln(errOut, "oramlint:", err)
			return 2
		}
		analyzers := analyzersFor(filepath.ToSlash(rel))
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(errOut, "oramlint:", err)
			return 2
		}
		findings, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(errOut, "oramlint:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(errOut, "oramlint: %d finding(s)\n", total)
		return 1
	}
	return 0
}
