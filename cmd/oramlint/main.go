// Command oramlint runs the project's static analyzers over module
// packages:
//
//	go run ./cmd/oramlint ./...
//
// Simulation packages are checked for determinism (seed-only
// reproducibility); internal/oram is additionally checked for
// secret-dependent branching on address-emitting paths. Packages
// outside those sets are skipped. Exit status: 0 clean, 1 findings,
// 2 operational error (parse/type-check failure, bad pattern).
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stringoram/internal/analysis"
)

// determinismPkgs are the module-relative packages held to seed-only
// reproducibility: everything that executes during a simulation run or
// writes result artifacts.
var determinismPkgs = map[string]bool{
	"internal/oram":        true,
	"internal/sched":       true,
	"internal/dram":        true,
	"internal/sim":         true,
	"internal/experiments": true,
	"internal/rng":         true,
	"internal/trace":       true,
}

// obliviousPkg is the package whose address-emitting paths must not
// branch on secrets.
const obliviousPkg = "internal/oram"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// analyzersFor returns the analyzers that apply to one module-relative
// package path; an empty slice means the package is not checked.
func analyzersFor(rel string) []*analysis.Analyzer {
	var as []*analysis.Analyzer
	if determinismPkgs[rel] {
		as = append(as, analysis.Determinism)
	}
	if rel == obliviousPkg {
		as = append(as, analysis.DefaultOblivious)
	}
	return as
}

func run(args []string, out, errOut io.Writer) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "oramlint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(errOut, "oramlint:", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(errOut, "oramlint:", err)
		return 2
	}
	total := 0
	for _, dir := range dirs {
		rel, err := filepath.Rel(loader.ModuleDir, dir)
		if err != nil {
			fmt.Fprintln(errOut, "oramlint:", err)
			return 2
		}
		analyzers := analyzersFor(filepath.ToSlash(rel))
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(errOut, "oramlint:", err)
			return 2
		}
		findings, err := analysis.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(errOut, "oramlint:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(out, f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(errOut, "oramlint: %d finding(s)\n", total)
		return 1
	}
	return 0
}
