// Command oramlint runs the project's static analyzers over module
// packages:
//
//	go run ./cmd/oramlint ./...
//
// Simulation packages are checked for determinism (seed-only
// reproducibility); internal/oram and internal/server are additionally
// checked for secret-dependent branching on address-emitting paths
// (internal/server anchors on its busOp bus-event type); internal/oram,
// internal/server, internal/obs and internal/cluster run the
// interprocedural timing and scratch-ownership analyzers. Packages outside those sets are skipped.
//
// By default every package is analyzed twice — once under the default
// build context and once with -tags=invariants — so allow directives in
// tag-gated files are checked in the configuration that compiles them,
// and an allow that is load-bearing in only one configuration is not
// reported as stale. Pass -tags to pin a single configuration.
//
// Flags:
//
//	-json         emit findings as a JSON array (includes allow-
//	              suppressed findings with their justifications)
//	-rules a,b    run only the named analyzers
//	              (determinism, oblivious, timing, ownership, telemetry)
//	-tags t1,t2   lint a single build configuration with these tags
//
// Exit status: 0 clean, 1 findings, 2 operational error (parse/
// type-check failure, bad pattern).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"stringoram/internal/analysis"
)

// determinismPkgs are the module-relative packages held to seed-only
// reproducibility: everything that executes during a simulation run or
// writes result artifacts.
var determinismPkgs = map[string]bool{
	"internal/obs":         true,
	"internal/oram":        true,
	"internal/sched":       true,
	"internal/dram":        true,
	"internal/sim":         true,
	"internal/experiments": true,
	"internal/rng":         true,
	"internal/trace":       true,
}

// obliviousPkgs maps each package whose address-emitting paths must not
// branch on secrets to its analyzer instantiation: the emit types are
// package-local, so each package anchors on its own bus-event type.
var obliviousPkgs = map[string]*analysis.Analyzer{
	"internal/oram":   analysis.DefaultOblivious,
	"internal/server": analysis.Oblivious([]string{"busOp"}, nil),
}

// taintPkgs get the interprocedural analyzers: the timing analyzer
// (anchored on the union of the project's bus-event types plus the
// pipeline's park call) and the scratch-ownership analyzer.
var taintPkgs = map[string]bool{
	"internal/oram":    true,
	"internal/server":  true,
	"internal/obs":     true,
	"internal/cluster": true,
}

// timingAnalyzer is shared across packages: emission anchors are
// matched program-wide, so one instance sees oram's Access records and
// server's busOp events no matter which package is being reported on.
var timingAnalyzer = analysis.Timing(
	[]string{"Access", "busOp"},
	[]string{"Accesses"},
	[]string{"depend"},
)

var ownershipAnalyzer = analysis.Ownership()

// telemetryAnalyzer guards the observability plane: no secret-tagged
// value may reach a span payload, recorder event, metric observation,
// or metric name — telemetry leaves the box on every scrape.
var telemetryAnalyzer = analysis.Telemetry()

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// analyzersFor returns the analyzers that apply to one module-relative
// package path, filtered by the -rules selection (nil selection = all);
// an empty slice means the package is not checked.
func analyzersFor(rel string, rules map[string]bool) []*analysis.Analyzer {
	var as []*analysis.Analyzer
	add := func(a *analysis.Analyzer) {
		if rules == nil || rules[a.Name] {
			as = append(as, a)
		}
	}
	if determinismPkgs[rel] {
		add(analysis.Determinism)
	}
	if a := obliviousPkgs[rel]; a != nil {
		add(a)
	}
	if taintPkgs[rel] {
		add(timingAnalyzer)
		add(ownershipAnalyzer)
		add(telemetryAnalyzer)
	}
	return as
}

// jsonFinding is the machine-readable shape of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Allowed bool   `json:"allowed"`
	Reason  string `json:"reason,omitempty"`
}

// findingKey identifies one finding across build configurations.
type findingKey struct {
	file      string
	line, col int
	rule, msg string
}

func keyOf(f analysis.Finding) findingKey {
	return findingKey{file: f.Pos.Filename, line: f.Pos.Line, col: f.Pos.Column, rule: f.Rule, msg: f.Msg}
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("oramlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	jsonOut := fs.Bool("json", false, "emit findings as JSON (includes allow-suppressed findings)")
	rulesFlag := fs.String("rules", "", "comma-separated analyzer names to run (default: all)")
	tagsFlag := fs.String("tags", "", "build tags for a single lint configuration (default: lint both the default and the invariants configurations)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var rules map[string]bool
	if *rulesFlag != "" {
		rules = make(map[string]bool)
		for _, r := range strings.Split(*rulesFlag, ",") {
			rules[strings.TrimSpace(r)] = true
		}
	}
	configs := [][]string{nil, {"invariants"}}
	if *tagsFlag != "" {
		configs = [][]string{strings.Split(*tagsFlag, ",")}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "oramlint:", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(errOut, "oramlint:", err)
		return 2
	}

	// Run every configuration, then merge: a finding reported in any
	// configuration stands (preferring the un-allowed instance); a stale
	// allow stands only if it is stale in every configuration that
	// compiled its file, so allows matching tag-gated findings are not
	// false-flagged.
	merged := make(map[findingKey]analysis.Finding)
	staleSeen := make(map[findingKey]int)
	fileSeen := make(map[string]int)
	for _, tags := range configs {
		findings, files, err := runConfig(cwd, dirs, rules, tags)
		if err != nil {
			fmt.Fprintln(errOut, "oramlint:", err)
			return 2
		}
		for f := range files {
			fileSeen[f]++
		}
		for _, f := range findings {
			k := keyOf(f)
			if f.Rule == "allow" && strings.Contains(f.Msg, "stale escape") {
				staleSeen[k]++
				merged[k] = f
				continue
			}
			if old, ok := merged[k]; !ok || (old.Allowed && !f.Allowed) {
				merged[k] = f
			}
		}
	}
	for k, n := range staleSeen {
		if n < fileSeen[k.file] {
			delete(merged, k)
		}
	}

	all := make([]analysis.Finding, 0, len(merged))
	for _, f := range merged {
		all = append(all, f)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Rule < all[j].Rule
	})

	live := 0
	for _, f := range all {
		if !f.Allowed {
			live++
		}
	}
	if *jsonOut {
		js := make([]jsonFinding, 0, len(all))
		for _, f := range all {
			js = append(js, jsonFinding{
				File: f.Pos.Filename, Line: f.Pos.Line, Column: f.Pos.Column,
				Rule: f.Rule, Message: f.Msg, Allowed: f.Allowed, Reason: f.Reason,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(js); err != nil {
			fmt.Fprintln(errOut, "oramlint:", err)
			return 2
		}
	} else {
		for _, f := range all {
			if !f.Allowed {
				fmt.Fprintln(out, f)
			}
		}
	}
	if live > 0 {
		fmt.Fprintf(errOut, "oramlint: %d finding(s)\n", live)
		return 1
	}
	return 0
}

// runConfig lints one build configuration: load every checked package
// (and, transitively, its module-internal dependencies), build the
// whole-program view, and run each package's analyzers against it.
// files reports which source files this configuration compiled, for the
// cross-configuration stale-allow merge.
func runConfig(cwd string, dirs []string, rules map[string]bool, tags []string) ([]analysis.Finding, map[string]bool, error) {
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		return nil, nil, err
	}
	loader.SetBuildTags(tags)

	type target struct {
		pkg       *analysis.Package
		analyzers []*analysis.Analyzer
	}
	var targets []target
	for _, dir := range dirs {
		rel, err := filepath.Rel(loader.ModuleDir, dir)
		if err != nil {
			return nil, nil, err
		}
		analyzers := analyzersFor(filepath.ToSlash(rel), rules)
		if len(analyzers) == 0 {
			continue
		}
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, nil, err
		}
		targets = append(targets, target{pkg: pkg, analyzers: analyzers})
	}

	prog := analysis.NewProgram(loader.Packages())
	var all []analysis.Finding
	files := make(map[string]bool)
	for _, t := range targets {
		for _, f := range t.pkg.Files {
			files[t.pkg.Fset.Position(f.Pos()).Filename] = true
		}
		findings, err := analysis.Run(prog, t.pkg, t.analyzers)
		if err != nil {
			return nil, nil, err
		}
		all = append(all, findings...)
	}
	return all, files, nil
}
