// Command oramd is the ORAM key-value daemon: a sharded, batching
// server (internal/server via the stringoram facade) speaking the
// length-prefixed binary wire protocol over TCP, with an optional HTTP
// metrics endpoint and snapshot-based persistence.
//
// Usage:
//
//	oramd [flags]
//
// Flags:
//
//	-addr host:port      TCP listen address (default 127.0.0.1:9736)
//	-metrics host:port   HTTP metrics address; GET /metrics returns the
//	                     Prometheus text exposition, /metrics.json the
//	                     JSON snapshot, /debug/flightrec a Chrome
//	                     trace-event dump of recent batch spans (load in
//	                     Perfetto), and /debug/pprof/ runtime profiles
//	                     (empty disables all of them)
//	-shards N            ORAM instances / worker goroutines (default 4)
//	-levels N            tree levels per shard (default 12)
//	-queue N             per-shard queue depth (default 256)
//	-batch N             max requests drained per worker wakeup (default 32)
//	-pipeline K          in-flight ORAM accesses per shard via the
//	                     concurrent controller; 0 or 1 serves serially
//	                     (default 0)
//	-seed N              master seed for per-shard protocol randomness
//	-snapshots DIR       snapshot directory: restore on boot, save on
//	                     shutdown (empty disables persistence)
//	-timeout D           default per-request deadline (0 disables)
//	-key HEX             16-byte AES key (hex) sealing block contents
//	-trace-sample N      distributed tracing: record ~1/N of requests
//	                     end to end (power of two; 1 traces everything,
//	                     0 disables)
//	-slo-p99 D           p99 latency objective; /healthz on the metrics
//	                     listener answers 200/503 with the error-budget
//	                     burn (0 disables)
//
// Cluster flags (multi-node mode; see DESIGN.md "Cluster"):
//
//	-cluster             serve as one member of a multi-node cluster
//	-node-id ID          this node's identity (must appear in -peers)
//	-peers LIST          comma-separated id=host:port pairs naming every
//	                     cluster member, this node included
//	-cluster-shards N    global shard count spread over the peers
//	                     (default: -shards × number of peers)
//
// In cluster mode -shards is ignored (the placement decides which
// shards this node hosts), every member must be started with identical
// -peers and -cluster-shards, and the metrics listener additionally
// serves the node's placement table on /cluster/placement, the merged
// cluster-wide Prometheus exposition (per-node series labelled
// node="id") on /cluster/metrics, and the stitched multi-node Perfetto
// trace on /cluster/trace.
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, drain
// every queued request, then snapshot each shard atomically — on-disk
// state is either the complete new snapshot or the previous one, never
// a torn write.
package main

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"stringoram"
	"stringoram/internal/obs"
)

// notifyListening, when set (tests), receives the resolved TCP address
// once the listener is up.
var notifyListening func(addr string)

// metricsMux builds the operator HTTP surface: Prometheus text on
// /metrics, the legacy JSON snapshot on /metrics.json, a Perfetto-ready
// trace dump of recent batch spans on /debug/flightrec, pprof, and (in
// cluster mode) the node's placement table on /cluster/placement. It
// rides on the -metrics listener only, so none of it is exposed unless
// the operator opts in.
func metricsMux(srv *stringoram.Server, node *stringoram.ClusterNode, slo *obs.SLO) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.PrometheusHandler(srv.Obs()))
	mux.HandleFunc("/metrics.json", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(srv.Metrics())
	})
	mux.HandleFunc("/debug/flightrec", func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		srv.FlightRecorder().WriteTrace(rw)
	})
	if slo != nil {
		mux.Handle("/healthz", slo.Handler())
	}
	if node != nil {
		mux.HandleFunc("/cluster/placement", func(rw http.ResponseWriter, _ *http.Request) {
			data, err := node.PlacementJSON()
			if err != nil {
				http.Error(rw, err.Error(), http.StatusInternalServerError)
				return
			}
			rw.Header().Set("Content-Type", "application/json")
			rw.Write(data)
		})
		mux.HandleFunc("/cluster/metrics", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4")
			if err := node.ClusterMetrics(rw); err != nil {
				http.Error(rw, err.Error(), http.StatusInternalServerError)
			}
		})
		mux.HandleFunc("/cluster/trace", func(rw http.ResponseWriter, _ *http.Request) {
			rw.Header().Set("Content-Type", "application/json")
			if err := node.ClusterTrace(rw); err != nil {
				http.Error(rw, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// parsePeers decodes -peers ("id=host:port,id=host:port,...").
func parsePeers(list string) ([]stringoram.ClusterNodeInfo, error) {
	var nodes []stringoram.ClusterNodeInfo
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("-peers: %q is not id=host:port", part)
		}
		nodes = append(nodes, stringoram.ClusterNodeInfo{ID: id, Addr: addr})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("-peers: no peers given")
	}
	return nodes, nil
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "oramd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("oramd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9736", "TCP listen address")
	metricsAddr := fs.String("metrics", "", "HTTP metrics listen address (empty disables)")
	shards := fs.Int("shards", 4, "number of ORAM shards")
	levels := fs.Int("levels", 12, "ORAM tree levels per shard")
	queue := fs.Int("queue", 256, "per-shard request queue depth")
	batch := fs.Int("batch", 32, "max requests per worker batch")
	pipeline := fs.Int("pipeline", 0, "in-flight ORAM accesses per shard (0: serial, 1: inline controller)")
	workers := fs.Int("workers", 0, "shared data-plane worker pool size for pipelined shards (0: NumCPU)")
	treetop := fs.Bool("treetop-cache", false, "hold the top tree levels decrypted in controller memory")
	seed := fs.Uint64("seed", 1, "master protocol seed")
	snapdir := fs.String("snapshots", "", "snapshot directory (restore on boot, save on shutdown)")
	timeout := fs.Duration("timeout", 2*time.Second, "default per-request deadline (0 disables)")
	keyHex := fs.String("key", "", "16-byte AES key in hex for sealed block storage")
	traceSample := fs.Uint64("trace-sample", 0, "distributed-tracing sample rate: keep ~1/N traced requests (power of two; 1: all, 0: off)")
	sloP99 := fs.Duration("slo-p99", 0, "p99 request-latency objective served on /healthz (0 disables)")
	clusterMode := fs.Bool("cluster", false, "serve as one member of a multi-node cluster")
	nodeID := fs.String("node-id", "", "this node's identity in -peers (cluster mode)")
	peers := fs.String("peers", "", "comma-separated id=host:port cluster members (cluster mode)")
	clusterShards := fs.Int("cluster-shards", 0, "global shard count over the cluster (0: -shards per peer)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := stringoram.DefaultServerConfig()
	cfg.Shards = *shards
	cfg.ORAM = stringoram.DefaultServerORAM(*levels)
	cfg.QueueDepth = *queue
	cfg.MaxBatch = *batch
	cfg.Pipeline = *pipeline
	cfg.Workers = *workers
	cfg.TreetopCache = *treetop
	cfg.Seed = *seed
	cfg.SnapshotDir = *snapdir
	cfg.DefaultTimeout = *timeout
	cfg.TraceSample = *traceSample
	if *keyHex != "" {
		key, err := hex.DecodeString(*keyHex)
		if err != nil {
			return fmt.Errorf("-key: %w", err)
		}
		cfg.Key = key
	}

	var (
		srv        *stringoram.Server
		node       *stringoram.ClusterNode
		tcp        *stringoram.ServerTCP
		listenAddr = *addr
	)
	if *clusterMode {
		nodes, err := parsePeers(*peers)
		if err != nil {
			return err
		}
		if *nodeID == "" {
			return fmt.Errorf("-cluster requires -node-id")
		}
		total := *clusterShards
		if total == 0 {
			total = *shards * len(nodes)
		}
		placement, err := stringoram.StaticPlacement(total, nodes)
		if err != nil {
			return err
		}
		idx := placement.NodeIndex(*nodeID)
		if idx < 0 {
			return fmt.Errorf("-node-id %q is not in -peers", *nodeID)
		}
		node, err = stringoram.NewClusterNode(stringoram.ClusterNodeConfig{
			ID:        *nodeID,
			Placement: placement,
			Server:    cfg,
		})
		if err != nil {
			return err
		}
		srv, tcp = node.Server(), node.TCP()
		// The node must listen where the placement says it lives, or the
		// peers and routers cannot reach it.
		listenAddr = placement.Nodes[idx].Addr
	} else {
		var err error
		srv, err = stringoram.NewServer(cfg)
		if err != nil {
			return err
		}
		tcp = stringoram.NewTCPServer(srv)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		srv.Close()
		return err
	}
	if node != nil {
		fmt.Fprintf(w, "oramd: cluster node %s hosting %d of %d shards, serving on %s\n",
			*nodeID, len(srv.HostedShards()), srv.TotalShards(), ln.Addr())
	} else {
		fmt.Fprintf(w, "oramd: %d shards, %d-level trees, serving on %s\n", *shards, *levels, ln.Addr())
	}
	if notifyListening != nil {
		notifyListening(ln.Addr().String())
	}

	var slo *obs.SLO
	if *sloP99 > 0 {
		slo = obs.NewSLO()
		slo.Add(srv.Obs(), obs.Objective{
			Name:      "p99_latency",
			Hists:     srv.LatencyHistograms(),
			Quantile:  0.99,
			Threshold: sloP99.Seconds(),
		})
	}

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mux := metricsMux(srv, node, slo)
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			srv.Close()
			return fmt.Errorf("-metrics: %w", err)
		}
		fmt.Fprintf(w, "oramd: metrics on http://%s/metrics (JSON on /metrics.json, traces on /debug/flightrec, pprof on /debug/pprof/)\n", mln.Addr())
		metricsSrv = &http.Server{Handler: mux}
		go metricsSrv.Serve(mln)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- tcp.Serve(ln) }()

	var runErr error
	select {
	case <-ctx.Done():
		fmt.Fprintln(w, "oramd: signal received, draining")
		// The metrics listener drains alongside the TCP server: a
		// graceful stop must release both ports, and an in-flight scrape
		// gets its response before the process exits.
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if metricsSrv != nil {
			metricsSrv.Shutdown(sctx)
		}
		tcp.Shutdown(sctx)
		cancel()
		<-serveErr
	case runErr = <-serveErr:
		if metricsSrv != nil {
			mctx, cancel := context.WithTimeout(context.Background(), time.Second)
			metricsSrv.Shutdown(mctx)
			cancel()
		}
	}
	// Close drains in-flight work and, when -snapshots is set, commits
	// one atomic snapshot per shard; in cluster mode it also drops the
	// replication links to the peers.
	var closeErr error
	if node != nil {
		closeErr = node.Close()
	} else {
		closeErr = srv.Close()
	}
	if closeErr != nil {
		if runErr == nil {
			runErr = closeErr
		}
	} else if *snapdir != "" {
		fmt.Fprintf(w, "oramd: snapshots committed to %s\n", *snapdir)
	}
	if runErr == nil {
		fmt.Fprintln(w, "oramd: shutdown complete")
	}
	return runErr
}
