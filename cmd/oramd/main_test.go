package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stringoram"
	"stringoram/internal/obs"
)

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its address, a cancel func (simulated SIGINT), and a channel
// carrying run's error after shutdown.
func startDaemon(t *testing.T, args []string) (addr string, stop context.CancelFunc, done chan error, out *bytes.Buffer) {
	t.Helper()
	if ln, err := net.Listen("tcp", "127.0.0.1:0"); err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	} else {
		ln.Close()
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	notifyListening = func(a string) { addrCh <- a }
	t.Cleanup(func() { notifyListening = nil })

	out = &bytes.Buffer{}
	sw := &syncWriter{buf: out}
	done = make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), sw)
	}()
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started listening")
	}
	return addr, cancel, done, out
}

// syncWriter makes the daemon's log buffer safe to read after shutdown
// while run is still writing from the test goroutine.
type syncWriter struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func waitShutdown(t *testing.T, stop context.CancelFunc, done chan error) {
	t.Helper()
	stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonKillRestart writes through the wire, simulates a SIGINT,
// restarts against the same snapshot directory, and verifies every
// acknowledged write is readable.
func TestDaemonKillRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-shards", "2", "-levels", "8", "-seed", "7", "-snapshots", dir}

	addr, stop, done, _ := startDaemon(t, args)
	c, err := stringoram.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	retry := stringoram.ServerRetryPolicy{MaxAttempts: 50}
	for i := 0; i < n; i++ {
		key, val := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		if err := c.PutRetry(key, []byte(val), retry); err != nil {
			t.Fatalf("put %s: %v", key, err)
		}
	}
	c.Close()
	waitShutdown(t, stop, done)

	addr, stop, done, out := startDaemon(t, args)
	c, err = stringoram.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < n; i++ {
		key, want := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		got, found, err := c.Get(key)
		if err != nil || !found || string(got) != want {
			t.Fatalf("after restart Get(%s) = %q found=%v err=%v", key, got, found, err)
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Keys != n {
		t.Fatalf("restored key count = %d, want %d", m.Keys, n)
	}
	c.Close()
	waitShutdown(t, stop, done)
	if !strings.Contains(out.String(), "snapshots committed") {
		t.Fatalf("shutdown log missing snapshot confirmation:\n%s", out.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-key", "zz"}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid -key accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid -addr accepted")
	}
}

// TestMetricsMuxEndpoints exercises the operator HTTP surface directly:
// /metrics must speak the Prometheus text exposition (correct status,
// content type, and a line-by-line parse), /metrics.json the legacy
// JSON snapshot, and /debug/flightrec a Chrome trace document.
func TestMetricsMuxEndpoints(t *testing.T) {
	cfg := stringoram.DefaultServerConfig()
	cfg.Shards = 2
	cfg.ORAM = stringoram.DefaultServerORAM(8)
	cfg.Seed = 3
	srv, err := stringoram.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for i := 0; i < 10; i++ {
		if err := srv.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(metricsMux(srv, nil, nil))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics Content-Type = %q, want %q", ct, obs.ContentType)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics body does not parse as Prometheus text: %v\n%s", err, body)
	}
	for _, want := range []string{
		`server_requests_total{shard="0",op="put"}`,
		`oram_stash_blocks{shard="1"}`,
		"server_queue_depth",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var m stringoram.ServerMetrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics.json decode: %v", err)
	}
	if m.Puts != 10 {
		t.Fatalf("/metrics.json Puts = %d, want 10", m.Puts)
	}

	resp, err = http.Get(ts.URL + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/flightrec decode: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/debug/flightrec has no events after serving traffic")
	}
}

// TestDaemonClusterThreeNodes boots a three-node cluster through the
// daemon's flag surface, routes traffic with the cluster-aware client,
// and checks the placement table the metrics listener exposes.
func TestDaemonClusterThreeNodes(t *testing.T) {
	addrs := make([]string, 3)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Skipf("loopback listen unavailable: %v", err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	peersFlag := fmt.Sprintf("n0=%s,n1=%s,n2=%s", addrs[0], addrs[1], addrs[2])
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	maddr := mln.Addr().String()
	mln.Close()

	stops := make([]context.CancelFunc, 3)
	dones := make([]chan error, 3)
	for i := 0; i < 3; i++ {
		args := []string{
			"-cluster", "-node-id", fmt.Sprintf("n%d", i), "-peers", peersFlag,
			"-shards", "2", "-levels", "8", "-seed", "11",
		}
		if i == 0 {
			args = append(args, "-metrics", maddr)
		}
		var got string
		got, stops[i], dones[i], _ = startDaemon(t, args)
		if got != addrs[i] {
			t.Fatalf("node %d listening on %s, placement says %s", i, got, addrs[i])
		}
	}

	r, err := stringoram.DialCluster(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	for i := 0; i < n; i++ {
		if err := r.Put(fmt.Sprintf("ck-%d", i), []byte(fmt.Sprintf("cv-%d", i))); err != nil {
			t.Fatalf("cluster put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		got, found, err := r.Get(fmt.Sprintf("ck-%d", i))
		if err != nil || !found || string(got) != fmt.Sprintf("cv-%d", i) {
			t.Fatalf("cluster get %d = %q found=%v err=%v", i, got, found, err)
		}
	}
	if p := r.Placement(); p.Shards != 6 {
		t.Fatalf("router placement shards = %d, want 6 (2 per node)", p.Shards)
	}
	r.Close()

	resp, err := http.Get("http://" + maddr + "/cluster/placement")
	if err != nil {
		t.Fatal(err)
	}
	var p stringoram.ClusterPlacement
	err = json.NewDecoder(resp.Body).Decode(&p)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/cluster/placement decode: %v", err)
	}
	if p.Shards != 6 || len(p.Nodes) != 3 {
		t.Fatalf("/cluster/placement = %d shards over %d nodes, want 6 over 3", p.Shards, len(p.Nodes))
	}

	for i := 2; i >= 0; i-- {
		waitShutdown(t, stops[i], dones[i])
	}
}

// TestDaemonClusterBadFlags pins the cluster-flag validation paths.
func TestDaemonClusterBadFlags(t *testing.T) {
	base := []string{"-cluster", "-peers", "a=127.0.0.1:1,b=127.0.0.1:2"}
	if err := run(context.Background(), base, &bytes.Buffer{}); err == nil {
		t.Fatal("-cluster without -node-id accepted")
	}
	if err := run(context.Background(), append(base, "-node-id", "zz"), &bytes.Buffer{}); err == nil {
		t.Fatal("-node-id outside -peers accepted")
	}
	if err := run(context.Background(), []string{"-cluster", "-node-id", "a", "-peers", "garbage"}, &bytes.Buffer{}); err == nil {
		t.Fatal("malformed -peers accepted")
	}
	if err := run(context.Background(), []string{"-cluster", "-node-id", "a", "-peers", ""}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty -peers accepted")
	}
}

// TestDaemonMetricsDrain boots the daemon with a metrics listener,
// scrapes it, then verifies the graceful drain shuts that listener down
// (connections are refused after shutdown completes).
func TestDaemonMetricsDrain(t *testing.T) {
	mln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	maddr := mln.Addr().String()
	mln.Close()

	addr, stop, done, _ := startDaemon(t, []string{"-shards", "1", "-levels", "8", "-metrics", maddr})
	c, err := stringoram.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	c.Close()

	var resp *http.Response
	for i := 0; ; i++ {
		resp, err = http.Get("http://" + maddr + "/metrics")
		if err == nil {
			break
		}
		if i > 100 {
			t.Fatalf("metrics listener never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("daemon /metrics invalid: %v", err)
	}

	waitShutdown(t, stop, done)
	if _, err := http.Get("http://" + maddr + "/metrics"); err == nil {
		t.Fatal("metrics listener still serving after graceful drain")
	}
}
