package main

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"stringoram"
)

// startDaemon runs the daemon in-process on an ephemeral port and
// returns its address, a cancel func (simulated SIGINT), and a channel
// carrying run's error after shutdown.
func startDaemon(t *testing.T, args []string) (addr string, stop context.CancelFunc, done chan error, out *bytes.Buffer) {
	t.Helper()
	if ln, err := net.Listen("tcp", "127.0.0.1:0"); err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	} else {
		ln.Close()
	}
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	notifyListening = func(a string) { addrCh <- a }
	t.Cleanup(func() { notifyListening = nil })

	out = &bytes.Buffer{}
	sw := &syncWriter{buf: out}
	done = make(chan error, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), sw)
	}()
	select {
	case addr = <-addrCh:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started listening")
	}
	return addr, cancel, done, out
}

// syncWriter makes the daemon's log buffer safe to read after shutdown
// while run is still writing from the test goroutine.
type syncWriter struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func waitShutdown(t *testing.T, stop context.CancelFunc, done chan error) {
	t.Helper()
	stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

// TestDaemonKillRestart writes through the wire, simulates a SIGINT,
// restarts against the same snapshot directory, and verifies every
// acknowledged write is readable.
func TestDaemonKillRestart(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-shards", "2", "-levels", "8", "-seed", "7", "-snapshots", dir}

	addr, stop, done, _ := startDaemon(t, args)
	c, err := stringoram.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		key, val := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		for {
			err := c.Put(key, []byte(val))
			if err == nil {
				break
			}
			if !stringoram.RetryableServerError(err) {
				t.Fatalf("put %s: %v", key, err)
			}
		}
	}
	c.Close()
	waitShutdown(t, stop, done)

	addr, stop, done, out := startDaemon(t, args)
	c, err = stringoram.DialServer(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < n; i++ {
		key, want := fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i)
		got, found, err := c.Get(key)
		if err != nil || !found || string(got) != want {
			t.Fatalf("after restart Get(%s) = %q found=%v err=%v", key, got, found, err)
		}
	}
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m.Keys != n {
		t.Fatalf("restored key count = %d, want %d", m.Keys, n)
	}
	c.Close()
	waitShutdown(t, stop, done)
	if !strings.Contains(out.String(), "snapshots committed") {
		t.Fatalf("shutdown log missing snapshot confirmation:\n%s", out.String())
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-key", "zz"}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid -key accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid -addr accepted")
	}
}
