package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNoArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("no args accepted")
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"frobnicate"}, &buf); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"libq", "mummer", "24.07"} {
		if !strings.Contains(buf.String(), w) {
			t.Errorf("list output missing %q", w)
		}
	}
}

func TestGenAndInfoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "libq.trc")
	var buf bytes.Buffer
	if err := run([]string{"gen", "-workload", "libq", "-n", "2000", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	buf.Reset()
	if err := run([]string{"info", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "libq") || !strings.Contains(out, "records:     2000") {
		t.Fatalf("info output malformed:\n%s", out)
	}
	if !strings.Contains(out, "MPKI") {
		t.Fatal("info output missing MPKI")
	}
}

func TestGenAll(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"gen", "-all", "-n", "100", "-dir", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("generated %d traces, want 10", len(entries))
	}
}

func TestGenRequiresWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"gen"}, &buf); err == nil {
		t.Fatal("gen without -workload or -all accepted")
	}
}

func TestGenUnknownWorkload(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"gen", "-workload", "nosuch"}, &buf); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestInfoMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"info", "/nonexistent/file.trc"}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestInfoGarbageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.trc")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"info", path}, &buf); err == nil {
		t.Fatal("garbage file accepted")
	}
}
