// Command tracegen generates and inspects the synthetic workload traces
// used by the String ORAM experiments.
//
// Usage:
//
//	tracegen gen -workload libq -n 40000 -seed 7 -o libq.trc
//	tracegen gen -all -n 40000 -dir traces/
//	tracegen info libq.trc
//	tracegen list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"stringoram/internal/stats"
	"stringoram/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tracegen <gen|info|list> [flags]")
	}
	switch args[0] {
	case "list":
		t := stats.NewTable("Workload suite (paper Table IV)",
			"name", "MPKI", "write-frac", "footprint-MB", "stream-frac", "zipf")
		for _, p := range trace.Suite() {
			t.AddRowf(p.Name, p.MPKI, p.WriteFrac, float64(p.FootprintBytes)/(1<<20), p.StreamFrac, p.ZipfTheta)
		}
		return t.Render(w)
	case "gen":
		return genCmd(args[1:], w)
	case "info":
		if len(args) < 2 {
			return fmt.Errorf("usage: tracegen info <file>")
		}
		return infoCmd(args[1], w)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func genCmd(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	workload := fs.String("workload", "", "suite workload name")
	all := fs.Bool("all", false, "generate the whole suite")
	n := fs.Int("n", 40000, "records per trace")
	seed := fs.Uint64("seed", 7, "base seed")
	out := fs.String("o", "", "output file (single workload)")
	dir := fs.String("dir", ".", "output directory (-all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	writeOne := func(p trace.Profile, path string) error {
		tr, err := trace.Generate(p, *n, trace.SeedFor(*seed, p.Name))
		if err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, tr); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s: %d records, MPKI %.2f\n", path, len(tr.Records), tr.MPKI())
		return f.Close()
	}
	if *all {
		for _, p := range trace.Suite() {
			if err := writeOne(p, filepath.Join(*dir, p.Name+".trc")); err != nil {
				return err
			}
		}
		return nil
	}
	if *workload == "" {
		return fmt.Errorf("need -workload or -all")
	}
	p, err := trace.ByName(*workload)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = p.Name + ".trc"
	}
	return writeOne(p, path)
}

func infoCmd(path string, w io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	reads, writes := 0, 0
	distinct := make(map[uint64]bool)
	for _, r := range tr.Records {
		if r.Write {
			writes++
		} else {
			reads++
		}
		distinct[r.Addr] = true
	}
	fmt.Fprintf(w, "name:        %s\n", tr.Name)
	fmt.Fprintf(w, "records:     %d (%d reads, %d writes)\n", len(tr.Records), reads, writes)
	fmt.Fprintf(w, "instructions:%d\n", tr.Instructions())
	fmt.Fprintf(w, "MPKI:        %.2f\n", tr.MPKI())
	fmt.Fprintf(w, "footprint:   %d distinct blocks (%.1f MB)\n", len(distinct), float64(len(distinct))*64/(1<<20))
	return nil
}
