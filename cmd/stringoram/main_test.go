package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stringoram/internal/trace"
)

func TestRunRequiresExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), nil, &buf); err == nil {
		t.Fatal("no args accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"fig99"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunUnknownScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"fig4", "-scale", "galactic"}, &buf); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunFig4(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"fig4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Config-1", "Config-4", "35.56%"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}

func TestRunTableVCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"tablev", "-csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "config,Y,total-GB") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "Config-4,8,12.00") {
		t.Fatalf("CSV row missing:\n%s", out)
	}
}

func TestRunBandwidth(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"bandwidth", "-accesses", "200"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Path ORAM") {
		t.Fatal("bandwidth output missing Path ORAM")
	}
}

func TestRunSimulatedExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	var buf bytes.Buffer
	err := run(context.Background(), []string{"fig14", "-accesses", "60", "-levels", "10", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bg-evictions") {
		t.Fatalf("fig14 output malformed:\n%s", buf.String())
	}
}

func TestRunFlagParseError(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"fig4", "-no-such-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// tinyArgs shrinks simulated experiments so CLI tests stay fast.
func tinyArgs(exp string) []string {
	return []string{exp, "-accesses", "60", "-levels", "10", "-seed", "3"}
}

func TestRunSimulatedSubcommands(t *testing.T) {
	if testing.Short() {
		t.Skip("simulations in -short mode")
	}
	cases := map[string]string{
		"fig5b":     "read-path",
		"fig10":     "baseline",
		"fig11":     "read-CB",
		"fig13":     "green/read",
		"fig15":     "access#",
		"mixes":     "fairness",
		"ablations": "flat layout",
		"timeline":  "proactive-bank",
	}
	for exp, want := range cases {
		t.Run(exp, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(context.Background(), tinyArgs(exp), &buf); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
			if !strings.Contains(buf.String(), want) {
				t.Fatalf("%s output missing %q:\n%s", exp, want, buf.String())
			}
		})
	}
}

func TestRunFig12BothTables(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), tinyArgs("fig12"), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bank idle") || !strings.Contains(out, "early-PRE") {
		t.Fatalf("fig12 output incomplete:\n%s", out)
	}
}

func TestRunSingleSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	var buf bytes.Buffer
	err := run(context.Background(), []string{"run", "-workload", "black", "-levels", "10",
		"-accesses", "60", "-tracelen", "1500", "-scheduler", "pb",
		"-layout", "flat", "-policy", "close", "-balance", "-uniform", "-warm", "0.3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "execution cycles") {
		t.Fatalf("run output malformed:\n%s", buf.String())
	}
}

func TestRunSingleMix(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	var buf bytes.Buffer
	err := run(context.Background(), []string{"run", "-workload", "black+libq", "-levels", "10",
		"-accesses", "60", "-tracelen", "1500"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "per-core instructions") {
		t.Fatalf("mix run missing per-core stats:\n%s", buf.String())
	}
}

func TestRunSingleTraceFile(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	p, err := trace.ByName("black")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(p, 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "black.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var buf bytes.Buffer
	err = run(context.Background(), []string{"run", "-trace", path, "-levels", "10", "-accesses", "60"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workload black") {
		t.Fatalf("trace replay output:\n%s", buf.String())
	}

	if err := run(context.Background(), []string{"run", "-trace", "/nonexistent.trc"}, &buf); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestVerifySubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check in -short mode")
	}
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"verify"}, &buf); err != nil {
		t.Fatalf("verify failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "all checks passed") {
		t.Fatalf("verify output:\n%s", buf.String())
	}
}

func TestHardwareSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"hardware"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "PB scheduler") {
		t.Fatalf("hardware output:\n%s", buf.String())
	}
}

func TestRunSingleRejections(t *testing.T) {
	cases := [][]string{
		{"run", "-scheduler", "bogus"},
		{"run", "-layout", "bogus"},
		{"run", "-policy", "bogus"},
		{"run", "-workload", "nosuch"},
		{"run", "-warm", "5"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(context.Background(), args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestRunAllCancelled verifies that a pre-cancelled context (the state
// after SIGINT/SIGTERM) stops the "all" loop between experiments.
func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := run(ctx, []string{"all"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "interrupted before") {
		t.Fatalf("cancelled all = %v, want interruption error", err)
	}
}

// TestRunSingleFlightRecorder runs with -flightrec and checks the dump
// is a well-formed Chrome trace document with cycle-stamped events.
func TestRunSingleFlightRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	out := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	err := run(context.Background(), []string{"run", "-workload", "black", "-levels", "10",
		"-accesses", "60", "-tracelen", "1500", "-flightrec", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flight recording:") {
		t.Fatalf("run output missing flight-recording line:\n%s", buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		OtherData       struct {
			TimeDomain string `json:"timeDomain"`
		} `json:"otherData"`
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("flight recording is not valid JSON: %v", err)
	}
	if doc.OtherData.TimeDomain != "cycles" {
		t.Fatalf("timeDomain = %q, want cycles (simulator events are never wall-clock)", doc.OtherData.TimeDomain)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("flight recording holds no events")
	}

	if err := run(context.Background(), []string{"run", "-workload", "black", "-levels", "10",
		"-accesses", "10", "-tracelen", "500", "-flightrec", out, "-flightrec-cap", "0"}, &buf); err == nil {
		t.Fatal("-flightrec-cap 0 accepted")
	}
}
