package main

import (
	"bytes"
	"fmt"
	"io"

	"stringoram/internal/config"
	"stringoram/internal/oram"
	"stringoram/internal/rng"
	"stringoram/internal/sim"
	"stringoram/internal/trace"
)

// runVerify implements the "verify" subcommand: a fast end-to-end
// self-check of the installed binary — functional data integrity,
// protocol invariants, XOR-decode equivalence, checkpoint resume, and
// simulator determinism. Exits non-zero on any failure.
func runVerify(w io.Writer) error {
	type check struct {
		name string
		fn   func() error
	}
	checks := []check{
		{"functional round trip + invariants", verifyFunctional},
		{"XOR decode equals direct read", verifyXOR},
		{"checkpoint save/load resume", verifyCheckpoint},
		{"simulator determinism", verifySimDeterminism},
		{"scheduler schemes ordering", verifySchemes},
	}
	failed := 0
	for _, c := range checks {
		if err := c.fn(); err != nil {
			failed++
			fmt.Fprintf(w, "FAIL  %-38s %v\n", c.name, err)
		} else {
			fmt.Fprintf(w, "ok    %s\n", c.name)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d checks failed", failed, len(checks))
	}
	fmt.Fprintln(w, "all checks passed")
	return nil
}

func verifyCfg() config.ORAM {
	cfg := config.Default().ORAM
	cfg.Levels = 10
	cfg.TreeTopCacheLevels = 3
	return cfg
}

func verifyFunctional() error {
	cfg := verifyCfg()
	crypt, err := oram.NewCrypt([]byte("verify-key-16byt"), cfg.BlockSize)
	if err != nil {
		return err
	}
	r, err := oram.NewRing(cfg, 1, &oram.Options{
		Store: oram.NewMemStore(cfg.SlotsPerBucket()), Crypt: crypt,
	})
	if err != nil {
		return err
	}
	src := rng.New(2)
	ref := make(map[oram.BlockID][]byte)
	for i := 0; i < 600; i++ {
		id := oram.BlockID(src.Intn(64))
		if src.Bool() {
			d := make([]byte, cfg.BlockSize)
			for j := range d {
				d[j] = byte(i + j)
			}
			if _, err := r.Write(id, d); err != nil {
				return err
			}
			ref[id] = d
		} else {
			got, _, err := r.Read(id)
			if err != nil {
				return err
			}
			want := ref[id]
			if want == nil {
				want = make([]byte, cfg.BlockSize)
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("block %d corrupted at step %d", id, i)
			}
		}
	}
	return r.CheckInvariants()
}

func verifyXOR() error {
	cfg := verifyCfg()
	cfg.Y = 0
	mk := func(xor bool) (*oram.Ring, error) {
		crypt, err := oram.NewCrypt([]byte("verify-key-16byt"), cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		return oram.NewRing(cfg, 3, &oram.Options{
			Store: oram.NewMemStore(cfg.SlotsPerBucket()), Crypt: crypt, XOR: xor,
		})
	}
	a, err := mk(true)
	if err != nil {
		return err
	}
	b, err := mk(false)
	if err != nil {
		return err
	}
	for i := 0; i < 400; i++ {
		id := oram.BlockID(i % 32)
		write := i%3 == 0
		var data []byte
		if write {
			data = make([]byte, cfg.BlockSize)
			data[0] = byte(i)
		}
		da, _, errA := a.Access(id, write, data)
		db, _, errB := b.Access(id, write, data)
		if errA != nil || errB != nil {
			return fmt.Errorf("%v / %v", errA, errB)
		}
		if !bytes.Equal(da, db) {
			return fmt.Errorf("XOR and direct reads differ at step %d", i)
		}
	}
	return nil
}

func verifyCheckpoint() error {
	cfg := verifyCfg()
	key := []byte("verify-key-16byt")
	crypt, err := oram.NewCrypt(key, cfg.BlockSize)
	if err != nil {
		return err
	}
	r, err := oram.NewRing(cfg, 5, &oram.Options{
		Store: oram.NewMemStore(cfg.SlotsPerBucket()), Crypt: crypt,
	})
	if err != nil {
		return err
	}
	d := make([]byte, cfg.BlockSize)
	copy(d, "checkpointed")
	if _, err := r.Write(7, d); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		return err
	}
	r2, err := oram.Load(&buf, key)
	if err != nil {
		return err
	}
	got, _, err := r2.Read(7)
	if err != nil {
		return err
	}
	if !bytes.Equal(got, d) {
		return fmt.Errorf("restored ring returned wrong data")
	}
	return nil
}

func verifySimDeterminism() error {
	p, err := trace.ByName("black")
	if err != nil {
		return err
	}
	tr, err := trace.Generate(p, 1500, 9)
	if err != nil {
		return err
	}
	sys := config.Default()
	sys.ORAM.Levels = 10
	run := func() (int64, error) {
		res, err := sim.Run(sys, tr, sim.Options{MaxAccesses: 100})
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	a, err := run()
	if err != nil {
		return err
	}
	b, err := run()
	if err != nil {
		return err
	}
	if a != b {
		return fmt.Errorf("two identical runs took %d and %d cycles", a, b)
	}
	return nil
}

func verifySchemes() error {
	p, err := trace.ByName("libq")
	if err != nil {
		return err
	}
	tr, err := trace.Generate(p, 2500, 11)
	if err != nil {
		return err
	}
	sys := config.Default()
	sys.ORAM.Levels = 12
	sys.ORAM.WarmFill = 0.5
	cycles := func(s config.System) (int64, error) {
		res, err := sim.Run(s, tr, sim.Options{MaxAccesses: 250})
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	base, err := cycles(sys.WithCBRate(0))
	if err != nil {
		return err
	}
	all, err := cycles(sys.WithCBRate(8).WithScheduler(config.SchedProactiveBank))
	if err != nil {
		return err
	}
	if all >= base {
		return fmt.Errorf("String ORAM (%d) not faster than baseline (%d)", all, base)
	}
	return nil
}
