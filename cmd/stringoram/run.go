package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"stringoram/internal/config"
	"stringoram/internal/obs"
	"stringoram/internal/sched"
	"stringoram/internal/sim"
	"stringoram/internal/stats"
	"stringoram/internal/trace"
)

// runSingle implements the "run" subcommand: one fully configurable
// simulation with a human-readable report, the Swiss-army knife for
// exploring the design space beyond the paper's fixed experiments.
func runSingle(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	workload := fs.String("workload", "ferret", "suite workload name (tracegen list)")
	scheduler := fs.String("scheduler", "transaction", "transaction or pb")
	y := fs.Int("y", 8, "CB rate Y")
	stash := fs.Int("stash", 500, "stash size in blocks")
	levels := fs.Int("levels", 16, "ORAM tree levels")
	accesses := fs.Int("accesses", 1000, "ORAM accesses to simulate")
	traceLen := fs.Int("tracelen", 10000, "trace records to generate")
	seed := fs.Uint64("seed", 7, "random seed")
	layout := fs.String("layout", "subtree", "subtree or flat")
	policy := fs.String("policy", "open", "open or close (page policy)")
	balance := fs.Bool("balance", false, "imbalance-aware dummy selection")
	uniform := fs.Bool("uniform", false, "uniform slot selection instead of dummy-first")
	warm := fs.Float64("warm", 0.5, "warm-fill occupancy in [0, 0.9]")
	traceFile := fs.String("trace", "", "replay a trace file (tracegen gen) instead of -workload")
	flightrec := fs.String("flightrec", "", "write a cycle-stamped Chrome trace of the run here (open in Perfetto)")
	flightrecCap := fs.Int("flightrec-cap", 1<<16, "flight-recorder capacity in events (ring; oldest dropped)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys := config.Default()
	sys.ORAM.Levels = *levels
	sys.ORAM.Y = *y
	sys.ORAM.StashSize = *stash
	sys.ORAM.WarmFill = *warm
	sys.ORAM.UniformSelect = *uniform
	sys.Seed = *seed
	switch *scheduler {
	case "transaction":
		sys.Scheduler = config.SchedTransaction
	case "pb":
		sys.Scheduler = config.SchedProactiveBank
	default:
		return fmt.Errorf("unknown scheduler %q (want transaction or pb)", *scheduler)
	}
	switch *layout {
	case "subtree":
		sys.Layout = config.LayoutSubtree
	case "flat":
		sys.Layout = config.LayoutFlat
	default:
		return fmt.Errorf("unknown layout %q (want subtree or flat)", *layout)
	}
	switch *policy {
	case "open":
		sys.DRAM.Policy = config.OpenPage
	case "close":
		sys.DRAM.Policy = config.ClosePage
	default:
		return fmt.Errorf("unknown page policy %q (want open or close)", *policy)
	}
	if err := sys.Validate(); err != nil {
		return err
	}

	// "a+b+c" runs a heterogeneous mix, one workload per core; -trace
	// replays a recorded trace file instead.
	var trs []*trace.Trace
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			return err
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		trs = append(trs, tr)
	} else {
		for _, name := range strings.Split(*workload, "+") {
			p, err := trace.ByName(name)
			if err != nil {
				return err
			}
			tr, err := trace.Generate(p, *traceLen, trace.SeedFor(*seed, p.Name))
			if err != nil {
				return err
			}
			trs = append(trs, tr)
		}
	}
	var res *sim.Result
	var err error
	simOpts := sim.Options{MaxAccesses: *accesses, BalanceChannels: *balance}
	var rec *obs.Recorder
	if *flightrec != "" {
		if *flightrecCap <= 0 {
			return fmt.Errorf("-flightrec-cap must be positive, got %d", *flightrecCap)
		}
		rec = obs.NewRecorder("cycles", *flightrecCap)
		simOpts.FlightRecorder = rec
	}
	if len(trs) == 1 {
		res, err = sim.Run(sys, trs[0], simOpts)
	} else {
		res, err = sim.RunMulti(sys, trs, simOpts)
	}
	if err != nil {
		return err
	}
	if rec != nil {
		if err := writeFlightRecording(*flightrec, rec); err != nil {
			return err
		}
		fmt.Fprintf(w, "flight recording: %d of %d events retained -> %s (load at https://ui.perfetto.dev)\n",
			rec.Len(), rec.Total(), *flightrec)
	}

	fmt.Fprintf(w, "workload %s: %d ORAM accesses, %d instructions retired, LLC hit rate %s\n",
		res.Workload, res.ORAMAccesses, res.Retired, stats.Pct(res.LLCHitRate))
	if len(trs) > 1 {
		fmt.Fprintf(w, "per-core instructions retired: %v\n", res.PerCore)
	}
	fmt.Fprintf(w, "configuration: Z=%d S=%d Y=%d A=%d levels=%d stash=%d %v/%v/%v\n\n",
		sys.ORAM.Z, sys.ORAM.S, sys.ORAM.Y, sys.ORAM.A, sys.ORAM.Levels, sys.ORAM.StashSize,
		sys.Scheduler, sys.Layout, sys.DRAM.Policy)

	t := stats.NewTable("results", "metric", "value")
	t.AddRowf("execution cycles (memory clock)", res.Cycles)
	t.AddRowf("cycles/access", float64(res.Cycles)/float64(res.ORAMAccesses))
	t.AddRowf("read-path phase", stats.Pct(float64(res.PhaseCycles[sched.TagReadPath])/float64(res.Cycles)))
	t.AddRowf("eviction phase", stats.Pct(float64(res.PhaseCycles[sched.TagEvict])/float64(res.Cycles)))
	t.AddRowf("reshuffle phase", stats.Pct(float64(res.PhaseCycles[sched.TagReshuffle])/float64(res.Cycles)))
	t.AddRowf("bank idle proportion", stats.Pct(res.BankIdle))
	t.AddRowf("read-path row conflicts", stats.Pct(res.Sched.ConflictRate(sched.TagReadPath)))
	t.AddRowf("eviction row conflicts", stats.Pct(res.Sched.ConflictRate(sched.TagEvict)))
	t.AddRowf("avg read-queue wait (cycles)", res.Sched.AvgReadWait())
	t.AddRowf("avg write-queue wait (cycles)", res.Sched.AvgWriteWait())
	t.AddRowf("early PRE / ACT", fmt.Sprintf("%s / %s",
		stats.Pct(res.Sched.EarlyPREFrac()), stats.Pct(res.Sched.EarlyACTFrac())))
	energy := res.Sched.EnergyNJ(config.DDR31600Energy(), res.Cycles,
		sys.DRAM.Channels*sys.DRAM.Ranks)
	t.AddRowf("DRAM energy (uJ, first-order)", energy/1000)
	t.AddRowf("energy per access (nJ)", energy/float64(res.ORAMAccesses))
	t.AddRowf("green blocks per read path", res.ORAM.GreenPerReadPath())
	t.AddRowf("stash peak", res.ORAM.StashPeak)
	t.AddRowf("background evictions", res.ORAM.BackgroundEvictions)
	t.AddRowf("early reshuffles", res.ORAM.EarlyReshuffles)
	return t.Render(w)
}

// writeFlightRecording dumps the recorder as Chrome trace-event JSON via
// a temp-then-rename write, so the output file is never a torn document.
func writeFlightRecording(path string, rec *obs.Recorder) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".flightrec-*")
	if err != nil {
		return fmt.Errorf("flightrec: %w", err)
	}
	if err := rec.WriteTrace(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("flightrec: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("flightrec: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("flightrec: %w", err)
	}
	return nil
}
