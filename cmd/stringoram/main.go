// Command stringoram regenerates the paper's evaluation tables and
// figures from the simulator. Each subcommand corresponds to one
// experiment; see DESIGN.md for the experiment index.
//
// Usage:
//
//	stringoram <experiment> [flags]
//
// Experiments:
//
//	fig4       Ring ORAM memory space utilization (analytic)
//	fig5b      row-buffer conflict rate, read path vs eviction
//	fig10      normalized execution time (Baseline/CB/PB/ALL)
//	fig11      normalized request queuing time
//	fig12      bank idle time and early-command proportions
//	fig13      CB rate sensitivity sweep
//	fig14      stash size vs background evictions
//	fig15      run-time stash occupancy traces
//	tablev     CB configurations and space saving (analytic)
//	bandwidth  Ring vs Path ORAM bandwidth comparison
//	all        every experiment above, in order
//
// Flags:
//
//	-scale quick|full   simulation scale (default quick)
//	-accesses N         override ORAM accesses per run
//	-levels N           override tree levels
//	-seed N             override random seed
//	-csv                emit CSV instead of aligned tables
//	-stash N            stash size for fig15 (default 200)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stringoram/internal/experiments"
	"stringoram/internal/stats"
)

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: stringoram <experiment> [flags]

experiments: fig4 fig5b fig10 fig11 fig12 fig13 fig14 fig15 tablev bandwidth protocols ablations mixes timeline stashbound hardware all
             run    (single custom simulation; see stringoram run -h)
             plot   (render the figures as SVG files into -dir)
             verify (end-to-end self-check of this build)
flags:`)
	flag.CommandLine.SetOutput(w)
	flag.PrintDefaults()
}

func main() {
	// SIGINT/SIGTERM cancel the context: the "all" loop stops between
	// experiments and plot's atomic writes mean output files are either
	// complete or absent, never truncated.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stringoram:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	if len(args) == 0 {
		usage(os.Stderr)
		return fmt.Errorf("missing experiment name")
	}
	exp := args[0]
	if exp == "run" {
		return runSingle(args[1:], w)
	}
	if exp == "verify" {
		return runVerify(w)
	}

	fs := flag.NewFlagSet("stringoram", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "simulation scale: quick or full")
	accesses := fs.Int("accesses", 0, "override ORAM accesses per run")
	levels := fs.Int("levels", 0, "override ORAM tree levels")
	seed := fs.Uint64("seed", 0, "override random seed")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	stash := fs.Int("stash", 200, "stash size for fig15")
	dir := fs.String("dir", "figures", "output directory for plot")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick()
	case "full":
		scale = experiments.Full()
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}
	if *accesses > 0 {
		scale.Accesses = *accesses
	}
	if *levels > 0 {
		scale.Levels = *levels
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	render := func(t *stats.Table) error {
		var err error
		if *csv {
			err = t.RenderCSV(w)
		} else {
			err = t.Render(w)
		}
		if err == nil {
			_, err = fmt.Fprintln(w)
		}
		return err
	}

	r := experiments.NewRunner(scale)
	dispatch := map[string]func() error{
		"fig4":   func() error { return render(experiments.Fig4()) },
		"tablev": func() error { return render(experiments.TableV()) },
		"fig5b": func() error {
			t, err := r.Fig5b()
			if err != nil {
				return err
			}
			return render(t)
		},
		"fig10": func() error {
			t, err := r.Fig10()
			if err != nil {
				return err
			}
			return render(t)
		},
		"fig11": func() error {
			t, err := r.Fig11()
			if err != nil {
				return err
			}
			return render(t)
		},
		"fig12": func() error {
			a, b, err := r.Fig12()
			if err != nil {
				return err
			}
			if err := render(a); err != nil {
				return err
			}
			return render(b)
		},
		"fig13": func() error {
			t, err := r.Fig13()
			if err != nil {
				return err
			}
			return render(t)
		},
		"fig14": func() error {
			t, err := r.Fig14()
			if err != nil {
				return err
			}
			return render(t)
		},
		"fig15": func() error {
			t, err := r.Fig15(*stash, 40)
			if err != nil {
				return err
			}
			return render(t)
		},
		"bandwidth": func() error {
			t, err := experiments.Bandwidth(2000, scale.Seed)
			if err != nil {
				return err
			}
			return render(t)
		},
		"ablations": func() error {
			t, err := r.Ablations()
			if err != nil {
				return err
			}
			return render(t)
		},
		"timeline": func() error {
			s, err := r.Timeline(120)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, s)
			return err
		},
		"mixes": func() error {
			t, err := r.Mixes()
			if err != nil {
				return err
			}
			return render(t)
		},
		"protocols": func() error {
			t, err := r.Protocols()
			if err != nil {
				return err
			}
			return render(t)
		},
		"hardware": func() error {
			return render(experiments.Hardware(scale.System()))
		},
		"stashbound": func() error {
			t, err := r.StashBound(40, scale.Accesses, nil)
			if err != nil {
				return err
			}
			return render(t)
		},
		"plot": func() error {
			paths, err := r.RenderFigures(*dir)
			if err != nil {
				return err
			}
			for _, p := range paths {
				fmt.Fprintln(w, "wrote", p)
			}
			return nil
		},
	}

	order := []string{"fig4", "tablev", "fig5b", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "bandwidth", "protocols", "ablations", "mixes", "timeline"}
	if exp == "all" {
		start := time.Now()
		for _, name := range order {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("interrupted before %s: %w", name, err)
			}
			if err := dispatch[name](); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		fmt.Fprintf(w, "all experiments completed in %v (scale=%s, accesses=%d, levels=%d)\n",
			time.Since(start).Round(time.Millisecond), *scaleName, scale.Accesses, scale.Levels)
		return nil
	}
	fn, ok := dispatch[exp]
	if !ok {
		usage(os.Stderr)
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return fn()
}
