// Package stringoram_test holds the repository-level benchmark harness:
// one testing.B benchmark per table/figure of the paper's evaluation.
// Each benchmark regenerates its experiment at Quick scale and reports
// the headline metric(s) via b.ReportMetric, so `go test -bench=.`
// reproduces the whole evaluation and prints the paper-comparable
// numbers. See EXPERIMENTS.md for paper-vs-measured records.
package stringoram_test

import (
	"testing"

	"stringoram/internal/config"
	"stringoram/internal/experiments"
	"stringoram/internal/oram"
	"stringoram/internal/sched"
	"stringoram/internal/sim"
	"stringoram/internal/stats"
	"stringoram/internal/trace"
)

// benchScale is deliberately small so the full bench suite runs in
// minutes; use cmd/stringoram -scale full for publication-scale runs.
func benchScale() experiments.Scale {
	return experiments.Scale{Accesses: 500, TraceLen: 5000, Levels: 14, Seed: 7}
}

// BenchmarkFig4SpaceUtilization regenerates Fig. 4 (analytic) and
// reports Config-4's space efficiency (paper: 35.56%).
func BenchmarkFig4SpaceUtilization(b *testing.B) {
	b.ReportAllocs()
	var eff float64
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig4()
		c4 := config.ORAMForRing(config.Fig4Configs()[3])
		eff = c4.SpaceEfficiency()
	}
	b.ReportMetric(eff*100, "config4-efficiency-%")
}

// BenchmarkTableVCBSpace regenerates Table V and reports the Y=8 total
// footprint in GB (paper: 12 GB, down from 20 GB).
func BenchmarkTableVCBSpace(b *testing.B) {
	b.ReportAllocs()
	var gbTotal float64
	for i := 0; i < b.N; i++ {
		_ = experiments.TableV()
		o := config.Default().WithCBRate(8).ORAM
		gbTotal = float64(o.TotalCapacityBytes()) / float64(1<<30)
	}
	b.ReportMetric(gbTotal, "Y8-total-GB")
}

// BenchmarkFig5bRowBufferConflict regenerates Fig. 5(b) on one workload
// and reports the read-path and eviction conflict rates (paper: ~0.74 vs
// ~0.10).
func BenchmarkFig5bRowBufferConflict(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	p, err := trace.ByName("libq")
	if err != nil {
		b.Fatal(err)
	}
	var readRate, evictRate float64
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(p, scale.TraceLen, trace.SeedFor(scale.Seed, p.Name))
		if err != nil {
			b.Fatal(err)
		}
		sys := experiments.SchemeBaseline.Apply(scaleSystem(scale), 8)
		res, err := sim.Run(sys, tr, sim.Options{MaxAccesses: scale.Accesses})
		if err != nil {
			b.Fatal(err)
		}
		readRate = res.Sched.ConflictRate(sched.TagReadPath)
		evictRate = res.Sched.ConflictRate(sched.TagEvict)
	}
	b.ReportMetric(readRate, "readpath-conflict")
	b.ReportMetric(evictRate, "evict-conflict")
}

// scaleSystem mirrors experiments.Scale.system for direct bench runs:
// paper defaults at the bench's tree height, warm tree at 0.5.
func scaleSystem(s experiments.Scale) config.System {
	sys := config.Default()
	if s.Levels > 0 {
		sys.ORAM.Levels = s.Levels
	}
	sys.Seed = s.Seed
	sys.ORAM.WarmFill = 0.5
	return sys
}

// runScheme runs one (workload, scheme) simulation at bench scale.
func runScheme(b *testing.B, scale experiments.Scale, workload string, scheme experiments.Scheme) *sim.Result {
	b.Helper()
	p, err := trace.ByName(workload)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.Generate(p, scale.TraceLen, trace.SeedFor(scale.Seed, p.Name))
	if err != nil {
		b.Fatal(err)
	}
	res, err := sim.Run(scheme.Apply(scaleSystem(scale), 8), tr, sim.Options{MaxAccesses: scale.Accesses})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig10ExecutionTime regenerates Fig. 10's headline: normalized
// execution time of CB, PB and ALL on a representative workload
// (paper avg: CB 0.883, PB 0.811, ALL 0.700).
func BenchmarkFig10ExecutionTime(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	var cb, pb, all float64
	for i := 0; i < b.N; i++ {
		base := runScheme(b, scale, "mummer", experiments.SchemeBaseline)
		cb = float64(runScheme(b, scale, "mummer", experiments.SchemeCB).Cycles) / float64(base.Cycles)
		pb = float64(runScheme(b, scale, "mummer", experiments.SchemePB).Cycles) / float64(base.Cycles)
		all = float64(runScheme(b, scale, "mummer", experiments.SchemeAll).Cycles) / float64(base.Cycles)
	}
	b.ReportMetric(cb, "CB-norm-exec")
	b.ReportMetric(pb, "PB-norm-exec")
	b.ReportMetric(all, "ALL-norm-exec")
}

// BenchmarkFig11QueuingTime regenerates Fig. 11: normalized read/write
// queuing time under ALL (paper avg: read 0.671, write 0.687).
func BenchmarkFig11QueuingTime(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	var readN, writeN float64
	for i := 0; i < b.N; i++ {
		base := runScheme(b, scale, "libq", experiments.SchemeBaseline)
		all := runScheme(b, scale, "libq", experiments.SchemeAll)
		readN = all.Sched.AvgReadWait() / base.Sched.AvgReadWait()
		writeN = all.Sched.AvgWriteWait() / base.Sched.AvgWriteWait()
	}
	b.ReportMetric(readN, "read-queue-norm")
	b.ReportMetric(writeN, "write-queue-norm")
}

// BenchmarkFig12BankIdle regenerates Fig. 12: bank idle proportion under
// baseline vs PB (paper: 0.660 -> 0.407) and the early PRE/ACT fractions
// (paper: 0.593 / 0.569).
func BenchmarkFig12BankIdle(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	var baseIdle, pbIdle, earlyPre, earlyAct float64
	for i := 0; i < b.N; i++ {
		base := runScheme(b, scale, "ferret", experiments.SchemeBaseline)
		pb := runScheme(b, scale, "ferret", experiments.SchemePB)
		baseIdle, pbIdle = base.BankIdle, pb.BankIdle
		earlyPre, earlyAct = pb.Sched.EarlyPREFrac(), pb.Sched.EarlyACTFrac()
	}
	b.ReportMetric(baseIdle, "baseline-idle")
	b.ReportMetric(pbIdle, "PB-idle")
	b.ReportMetric(earlyPre, "early-PRE-frac")
	b.ReportMetric(earlyAct, "early-ACT-frac")
}

// BenchmarkFig13CBSensitivity regenerates Fig. 13: green blocks fetched
// per read path across CB rates (paper: 0.167, 0.652, 1.638, 3.255 for
// Y=2,4,6,8).
func BenchmarkFig13CBSensitivity(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	greens := make([]float64, 0, 4)
	for i := 0; i < b.N; i++ {
		greens = greens[:0]
		p, _ := trace.ByName("swapt")
		tr, err := trace.Generate(p, scale.TraceLen, trace.SeedFor(scale.Seed, p.Name))
		if err != nil {
			b.Fatal(err)
		}
		for _, y := range []int{2, 4, 6, 8} {
			res, err := sim.Run(scaleSystem(scale).WithCBRate(y), tr, sim.Options{MaxAccesses: scale.Accesses})
			if err != nil {
				b.Fatal(err)
			}
			greens = append(greens, res.ORAM.GreenPerReadPath())
		}
	}
	for i, y := range []int{2, 4, 6, 8} {
		b.ReportMetric(greens[i], "green-per-read-Y"+string(rune('0'+y)))
	}
}

// BenchmarkFig14StashEviction regenerates Fig. 14's crossover: background
// evictions appear with a small stash and an aggressive Y, and disappear
// at stash 500 (paper: stash 200 + Y>=6 triggers; stash 500 + Y=8 none).
func BenchmarkFig14StashEviction(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	var smallStashEvicts, bigStashEvicts float64
	p := trace.Profile{
		Name: "stashmix", MPKI: 20, WriteFrac: 0.4,
		FootprintBytes: 32 << 20, StreamFrac: 0.2, ZipfTheta: 0.4, Streams: 4,
	}
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(p, scale.TraceLen, trace.SeedFor(scale.Seed, p.Name))
		if err != nil {
			b.Fatal(err)
		}
		smallSys := scaleSystem(scale).WithCBRate(8).WithStashSize(16)
		smallSys.ORAM.BackgroundEvictThreshold = 8
		small, err := sim.Run(smallSys, tr, sim.Options{MaxAccesses: scale.Accesses})
		if err != nil {
			b.Fatal(err)
		}
		big, err := sim.Run(scaleSystem(scale).WithCBRate(8).WithStashSize(500), tr,
			sim.Options{MaxAccesses: scale.Accesses})
		if err != nil {
			b.Fatal(err)
		}
		smallStashEvicts = float64(small.ORAM.BackgroundEvictions)
		bigStashEvicts = float64(big.ORAM.BackgroundEvictions)
	}
	b.ReportMetric(smallStashEvicts, "bg-evicts-small-stash")
	b.ReportMetric(bigStashEvicts, "bg-evicts-stash500")
}

// BenchmarkFig15StashOccupancy regenerates Fig. 15: the mean run-time
// stash occupancy at Y=0 and Y=8 (occupancy grows with Y but stays
// bounded).
func BenchmarkFig15StashOccupancy(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	var mean0, mean8 float64
	p := trace.Profile{
		Name: "stashmix", MPKI: 20, WriteFrac: 0.4,
		FootprintBytes: 32 << 20, StreamFrac: 0.2, ZipfTheta: 0.4, Streams: 4,
	}
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(p, scale.TraceLen, trace.SeedFor(scale.Seed, p.Name))
		if err != nil {
			b.Fatal(err)
		}
		occMean := func(y int) float64 {
			res, err := sim.Run(scaleSystem(scale).WithCBRate(y), tr,
				sim.Options{MaxAccesses: scale.Accesses, CollectStash: true})
			if err != nil {
				b.Fatal(err)
			}
			sum := 0
			for _, s := range res.StashSamples {
				sum += s
			}
			if len(res.StashSamples) == 0 {
				return 0
			}
			return float64(sum) / float64(len(res.StashSamples))
		}
		mean0, mean8 = occMean(0), occMean(8)
	}
	b.ReportMetric(mean0, "mean-occupancy-Y0")
	b.ReportMetric(mean8, "mean-occupancy-Y8")
}

// BenchmarkRingVsPathBandwidth regenerates the introduction's bandwidth
// comparison (paper: Ring cuts overall bandwidth 2.3-4x, online >60x with
// the XOR technique).
func BenchmarkRingVsPathBandwidth(b *testing.B) {
	b.ReportAllocs()
	var overallRatio, onlineRatio float64
	for i := 0; i < b.N; i++ {
		path := oram.PathBandwidth(4, 24)
		o := config.ORAMForRing(config.Fig4Configs()[2])
		o.TreeTopCacheLevels = 0
		ring := oram.RingBandwidth(o, true)
		overallRatio = path.Overall / ring.Overall
		onlineRatio = path.Online / ring.Online
	}
	b.ReportMetric(overallRatio, "overall-path/ring")
	b.ReportMetric(onlineRatio, "online-path/ring")
}

// BenchmarkAblationLayout quantifies the subtree layout's benefit: the
// execution-time ratio of the flat layout over the subtree layout
// (the Fig. 5(a) motivation; expect > 1).
func BenchmarkAblationLayout(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	p, _ := trace.ByName("ferret")
	var ratio float64
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(p, scale.TraceLen, trace.SeedFor(scale.Seed, p.Name))
		if err != nil {
			b.Fatal(err)
		}
		sub, err := sim.Run(scaleSystem(scale), tr, sim.Options{MaxAccesses: scale.Accesses})
		if err != nil {
			b.Fatal(err)
		}
		flat, err := sim.Run(scaleSystem(scale).WithLayout(config.LayoutFlat), tr, sim.Options{MaxAccesses: scale.Accesses})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(flat.Cycles) / float64(sub.Cycles)
	}
	b.ReportMetric(ratio, "flat/subtree-exec")
}

// BenchmarkAblationPagePolicy compares open-page (the paper's
// assumption) with an eager close-page policy under ORAM traffic.
func BenchmarkAblationPagePolicy(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	p, _ := trace.ByName("ferret")
	var ratio float64
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(p, scale.TraceLen, trace.SeedFor(scale.Seed, p.Name))
		if err != nil {
			b.Fatal(err)
		}
		open, err := sim.Run(scaleSystem(scale), tr, sim.Options{MaxAccesses: scale.Accesses})
		if err != nil {
			b.Fatal(err)
		}
		closed, err := sim.Run(scaleSystem(scale).WithPagePolicy(config.ClosePage), tr, sim.Options{MaxAccesses: scale.Accesses})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(closed.Cycles) / float64(open.Cycles)
	}
	b.ReportMetric(ratio, "close/open-exec")
}

// BenchmarkRecursivePositionMap measures the recursion extension's
// overhead: read paths per logical access across the ORAM hierarchy
// (flat on-chip map costs exactly 1).
func BenchmarkRecursivePositionMap(b *testing.B) {
	b.ReportAllocs()
	cfg := config.Default().ORAM
	cfg.Levels = 14
	cfg.TreeTopCacheLevels = 4
	cfg.Y = 0
	var perAccess float64
	for i := 0; i < b.N; i++ {
		rr, err := oram.NewRecursiveRing(oram.RecursiveConfig{
			Data: cfg, Capacity: 1 << 15, OnChipCutoff: 256,
		}, 7, nil)
		if err != nil {
			b.Fatal(err)
		}
		const n = 2000
		for j := 0; j < n; j++ {
			if _, _, err := rr.Access(oram.BlockID(j*37%(1<<15)), j%3 == 0, nil); err != nil {
				b.Fatal(err)
			}
		}
		rp, _ := rr.TotalOps()
		perAccess = float64(rp) / n
	}
	b.ReportMetric(perAccess, "readpaths/access")
}

// BenchmarkXORDecode measures functional XOR-read throughput: accesses
// per second with single-block online transfers and dummy cancellation.
func BenchmarkXORDecode(b *testing.B) {
	b.ReportAllocs()
	cfg := config.Default().ORAM
	cfg.Levels = 12
	cfg.TreeTopCacheLevels = 3
	cfg.Y = 0
	crypt, err := oram.NewCrypt([]byte("benchmark-key-16"), cfg.BlockSize)
	if err != nil {
		b.Fatal(err)
	}
	r, err := oram.NewRing(cfg, 1, &oram.Options{
		Store: oram.NewMemStore(cfg.SlotsPerBucket()),
		Crypt: crypt,
		XOR:   true,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, cfg.BlockSize)
	for i := 0; i < 256; i++ {
		if _, err := r.Write(oram.BlockID(i), payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Read(oram.BlockID(i % 256)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkORAMAccess measures raw protocol throughput (accesses/sec of
// the Ring controller in timing-only mode), a library-level metric.
func BenchmarkORAMAccess(b *testing.B) {
	b.ReportAllocs()
	cfg := config.Default().ORAM
	cfg.Levels = 16
	r, err := oram.NewRing(cfg, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Access(oram.BlockID(i%4096), i%2 == 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedCyclesPerSecond measures simulator speed: simulated
// memory cycles per wall-clock second on the default workload.
func BenchmarkSimulatedCyclesPerSecond(b *testing.B) {
	b.ReportAllocs()
	scale := benchScale()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res := runScheme(b, scale, "black", experiments.SchemeAll)
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles/run")
}

// TestBenchHarnessTablesRender sanity-checks that every experiment table
// renders (the benches only exercise the numeric paths).
func TestBenchHarnessTablesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test skipped in -short mode")
	}
	r := experiments.NewRunner(experiments.Scale{Accesses: 150, TraceLen: 2000, Levels: 12, Seed: 3})
	tables := []*stats.Table{experiments.Fig4(), experiments.TableV()}
	if tb, err := r.Fig5b(); err != nil {
		t.Fatal(err)
	} else {
		tables = append(tables, tb)
	}
	if tb, err := r.Fig10(); err != nil {
		t.Fatal(err)
	} else {
		tables = append(tables, tb)
	}
	for _, tb := range tables {
		if tb.Rows() == 0 {
			t.Fatalf("table %q empty", tb.Title)
		}
	}
}
