// Package stringoram is a library implementation of String ORAM
// ("Streamline Ring ORAM Accesses through Spatial and Temporal
// Optimization", HPCA 2021): Ring ORAM with the Compact Bucket (CB)
// spatial optimization and the Proactive Bank (PB) DRAM scheduler, plus
// the full evaluation substrate — a cycle-accurate DDR3 memory-system
// simulator, subtree address mapping, trace-driven cores, and the
// experiment harness that regenerates every table and figure in the
// paper.
//
// Three entry points cover the common uses:
//
//   - Protocol: NewRing / NewPathORAM give functional, encrypted ORAM
//     controllers you can read and write through. Each access also
//     returns the physical operation list, so the protocol layer can be
//     embedded in other memory-system simulators.
//   - Simulation: Simulate runs a workload trace through the full system
//     (cores -> LLC -> ORAM -> scheduler -> DRAM) and returns timing,
//     queuing, row-buffer and stash statistics.
//   - Experiments: NewExperiments regenerates the paper's figures;
//     cmd/stringoram wraps it as a CLI.
//
// The package is a facade: implementation lives in internal/ packages
// and is re-exported here via type aliases, so the full API surface of
// the underlying types is available to importers.
package stringoram

import (
	"io"

	"stringoram/internal/cluster"
	"stringoram/internal/config"
	"stringoram/internal/experiments"
	"stringoram/internal/oram"
	"stringoram/internal/server"
	"stringoram/internal/sim"
	"stringoram/internal/trace"
)

// Configuration types (see internal/config for field documentation).
type (
	// SystemConfig bundles the ORAM, DRAM, CPU and cache parameters of
	// one simulated system.
	SystemConfig = config.System
	// ORAMConfig holds the Ring ORAM / String ORAM protocol parameters
	// (Z, S, Y, A, tree height, stash size, ...).
	ORAMConfig = config.ORAM
	// DRAMConfig describes the memory organization and DDR timing.
	DRAMConfig = config.DRAM
	// SchedulerKind selects transaction-based or Proactive Bank
	// scheduling.
	SchedulerKind = config.SchedulerKind
)

// Scheduler kinds.
const (
	// SchedTransaction is the baseline transaction-based scheduler
	// (paper Algorithm 1).
	SchedTransaction = config.SchedTransaction
	// SchedProactiveBank is the PB scheduler (paper Algorithm 2).
	SchedProactiveBank = config.SchedProactiveBank
)

// DefaultConfig returns the paper's default system (Tables I-III):
// Z=8, S=12, Y=8, 24-level tree, stash 500, DDR3-1600 4ch x 8 banks.
func DefaultConfig() SystemConfig { return config.Default() }

// ScaledConfig returns the default system shrunk to a tree with the
// given number of levels, for fast experimentation.
func ScaledConfig(levels int) SystemConfig { return config.ScaledDefault(levels) }

// Protocol types.
type (
	// Ring is the Ring ORAM controller with Compact Bucket support.
	Ring = oram.Ring
	// PathORAM is the Path ORAM baseline controller.
	PathORAM = oram.Path
	// RingOptions configures optional Ring/Path behaviour (functional
	// store, selection policy, stash sampling).
	RingOptions = oram.Options
	// BlockID identifies a logical data block.
	BlockID = oram.BlockID
	// Op is one ORAM operation with its physical slot accesses.
	Op = oram.Op
	// ProtocolStats aggregates protocol-level counters.
	ProtocolStats = oram.Stats
)

// ErrStashOverflow is returned when background eviction cannot keep the
// stash within capacity (an over-aggressive CB rate for the stash size).
var ErrStashOverflow = oram.ErrStashOverflow

// Recursive position-map types.
type (
	// RecursiveRing stores the position map in recursively smaller
	// Ring ORAMs (an extension beyond the paper's on-chip map).
	RecursiveRing = oram.RecursiveRing
	// RecursiveConfig parameterizes NewRecursiveRing.
	RecursiveConfig = oram.RecursiveConfig
)

// NewRecursiveRing builds a Ring ORAM whose position map is itself
// ORAM-protected; see oram.RecursiveRing for the cost model.
func NewRecursiveRing(rc RecursiveConfig, seed uint64, opts *RingOptions) (*RecursiveRing, error) {
	return oram.NewRecursiveRing(rc, seed, opts)
}

// NewRing returns a timing-only Ring ORAM controller (no data movement;
// every access still returns its exact physical operation list).
func NewRing(cfg ORAMConfig, seed uint64) (*Ring, error) {
	return oram.NewRing(cfg, seed, nil)
}

// NewFunctionalRing returns a Ring ORAM controller that moves real data
// through an encrypted in-memory store under the given 16-byte AES key.
func NewFunctionalRing(cfg ORAMConfig, seed uint64, key []byte) (*Ring, error) {
	crypt, err := oram.NewCrypt(key, cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	return oram.NewRing(cfg, seed, &oram.Options{
		Store: oram.NewMemStore(cfg.SlotsPerBucket()),
		Crypt: crypt,
	})
}

// NewPathORAM returns a Path ORAM baseline controller with Z-slot
// buckets; pass a nil options for timing-only mode.
func NewPathORAM(z, levels, blockSize, stashSize int, seed uint64, opts *RingOptions) (*PathORAM, error) {
	return oram.NewPath(z, levels, blockSize, stashSize, seed, opts)
}

// LoadRing restores a Ring from a checkpoint written by Ring.Save. For
// encrypted checkpoints, key must be the original 16-byte AES key; pass
// nil for timing-only checkpoints.
func LoadRing(r io.Reader, key []byte) (*Ring, error) {
	return oram.Load(r, key)
}

// Workload types.
type (
	// Trace is a named memory-access trace.
	Trace = trace.Trace
	// TraceProfile parameterizes the synthetic trace generator.
	TraceProfile = trace.Profile
)

// WorkloadSuite returns the paper's Table IV workload profiles.
func WorkloadSuite() []TraceProfile { return trace.Suite() }

// WorkloadByName looks up one Table IV profile.
func WorkloadByName(name string) (TraceProfile, error) { return trace.ByName(name) }

// GenerateTrace synthesizes a trace of n accesses from a profile.
func GenerateTrace(p TraceProfile, n int, seed uint64) (*Trace, error) {
	return trace.Generate(p, n, seed)
}

// Simulation types.
type (
	// SimOptions tunes one simulation run.
	SimOptions = sim.Options
	// SimResult carries the timing and statistics of one run.
	SimResult = sim.Result
)

// Simulate runs a trace through the full String ORAM system.
func Simulate(sys SystemConfig, tr *Trace, opts SimOptions) (*SimResult, error) {
	return sim.Run(sys, tr, opts)
}

// SimulateMix runs a heterogeneous multiprogrammed mix: one trace per
// core, repeating round-robin when fewer traces than cores.
func SimulateMix(sys SystemConfig, trs []*Trace, opts SimOptions) (*SimResult, error) {
	return sim.RunMulti(sys, trs, opts)
}

// Serving types (see internal/server for the obliviousness and
// backpressure contracts).
type (
	// Server is the sharded, batching ORAM key-value server. Each shard
	// owns one Ring confined to a single goroutine.
	Server = server.Server
	// ServerConfig parameterizes NewServer.
	ServerConfig = server.Config
	// ServerMetrics is a point-in-time server metrics snapshot.
	ServerMetrics = server.Metrics
	// ServerTCP exposes a Server over the length-prefixed wire protocol.
	ServerTCP = server.TCPServer
	// ServerClient is the stdlib-only TCP client for the wire protocol.
	ServerClient = server.Client
	// ServerRetryPolicy shapes exponential backoff with jitter for
	// retryable serving errors; the zero value uses sane defaults.
	ServerRetryPolicy = server.RetryPolicy
)

// Serving errors. ErrServerBacklog and ErrServerDeadline are retryable
// (see RetryableServerError); the rest are terminal for the request.
var (
	// ErrServerBacklog reports a full shard queue (backpressure).
	ErrServerBacklog = server.ErrBacklog
	// ErrServerDeadline reports a request that expired before serving.
	ErrServerDeadline = server.ErrDeadline
	// ErrServerClosed reports a request after Close began.
	ErrServerClosed = server.ErrClosed
	// ErrServerFull reports a shard at its key-capacity limit.
	ErrServerFull = server.ErrFull
)

// DefaultServerConfig returns a ready-to-use server configuration
// (4 shards, 12-level trees, queue depth 256, batch 32).
func DefaultServerConfig() ServerConfig { return server.Config{} }

// DefaultServerORAM returns the per-shard ORAM parameters for a tree of
// the given number of levels.
func DefaultServerORAM(levels int) ORAMConfig { return server.DefaultORAM(levels) }

// NewServer starts a sharded ORAM key-value server. When
// cfg.SnapshotDir holds a complete snapshot set, state is restored from
// it; Close writes a fresh set atomically.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// NewTCPServer wraps srv for serving over TCP; call Serve with a
// listener.
func NewTCPServer(srv *Server) *ServerTCP { return server.NewTCPServer(srv) }

// DialServer connects a wire-protocol client to a ServerTCP address.
func DialServer(addr string) (*ServerClient, error) { return server.Dial(addr) }

// DialServerRetry dials with exponential backoff and jitter, riding out
// a restarting daemon's connection-refused window.
func DialServerRetry(addr string, p ServerRetryPolicy) (*ServerClient, error) {
	return server.DialRetry(addr, p)
}

// RetryableServerError reports whether err is transient backpressure
// (backlog or deadline) that a client may retry.
func RetryableServerError(err error) bool { return server.Retryable(err) }

// Cluster types: internal/cluster grows the server from N
// goroutine-shards in one process to M nodes × N shards, with
// epoch-fenced shard placement, synchronous follower replication, and
// live shard handoff.
type (
	// ClusterNode is one cluster member: an embedded Server hosting the
	// shards the placement assigns it, plus replication and handoff.
	ClusterNode = cluster.Node
	// ClusterNodeConfig parameterizes NewClusterNode.
	ClusterNodeConfig = cluster.NodeConfig
	// ClusterPlacement is the epoch-fenced shard→node map.
	ClusterPlacement = cluster.Placement
	// ClusterNodeInfo names one cluster member (ID + address).
	ClusterNodeInfo = cluster.NodeInfo
	// ClusterRouter is the cluster-aware client: shard-addressed
	// routing, failover, and placement convergence.
	ClusterRouter = cluster.Router
)

// StaticPlacement builds the epoch-1 placement spreading shards
// round-robin over nodes, each shard's follower on the next node.
func StaticPlacement(shards int, nodes []ClusterNodeInfo) (*ClusterPlacement, error) {
	return cluster.Static(shards, nodes)
}

// NewClusterNode builds one cluster member; call its Serve with a
// listener bound to the node's placement address.
func NewClusterNode(cfg ClusterNodeConfig) (*ClusterNode, error) { return cluster.NewNode(cfg) }

// DialCluster bootstraps a cluster-aware router from any live node.
func DialCluster(seedAddr string) (*ClusterRouter, error) { return cluster.DialCluster(seedAddr) }

// Experiment types.
type (
	// Experiments regenerates the paper's tables and figures.
	Experiments = experiments.Runner
	// ExperimentScale sizes the simulated experiment runs.
	ExperimentScale = experiments.Scale
)

// QuickScale is the seconds-per-experiment scale.
func QuickScale() ExperimentScale { return experiments.Quick() }

// FullScale is the minutes-per-experiment scale used for EXPERIMENTS.md.
func FullScale() ExperimentScale { return experiments.Full() }

// NewExperiments returns an experiment runner at the given scale.
func NewExperiments(s ExperimentScale) *Experiments { return experiments.NewRunner(s) }
