// Filestore: an oblivious file store with persistence. Variable-size
// files are chunked across fixed-size ORAM blocks behind an encrypted
// index block, so an observer of the (simulated) memory bus learns
// neither which file is accessed, nor its size class, nor whether two
// operations touch the same file. The store checkpoints itself with
// Ring.Save and resumes with LoadRing — the deterministic controller
// continues exactly where it left off.
//
// Run with: go run ./examples/filestore
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"
	"strings"

	"stringoram"
)

const (
	payloadPerBlock = 62      // 64-byte blocks: 2-byte length + payload
	chunksPerFile   = 8       // fixed chunk budget hides file sizes
	fileSpace       = 1 << 18 // block-id region for file chunks
)

// fileStore maps names to byte blobs over an ORAM.
type fileStore struct {
	ring *stringoram.Ring
}

func newFileStore(key []byte) (*fileStore, error) {
	cfg := stringoram.DefaultConfig().ORAM
	cfg.Levels = 14
	cfg.TreeTopCacheLevels = 4
	ring, err := stringoram.NewFunctionalRing(cfg, 2027, key)
	if err != nil {
		return nil, err
	}
	return &fileStore{ring: ring}, nil
}

// chunkID derives the block id of chunk i of the named file.
func chunkID(name string, i int) stringoram.BlockID {
	h := fnv.New64a()
	h.Write([]byte(name))
	return stringoram.BlockID((h.Sum64()*31 + uint64(i)) % fileSpace)
}

// Put stores a file (up to chunksPerFile*payloadPerBlock bytes). Every
// Put performs exactly chunksPerFile ORAM writes regardless of the
// file's true size, so sizes do not leak through access counts.
func (fs *fileStore) Put(name string, data []byte) error {
	if len(data) > chunksPerFile*payloadPerBlock {
		return fmt.Errorf("file %q too large: %d bytes", name, len(data))
	}
	for i := 0; i < chunksPerFile; i++ {
		lo := i * payloadPerBlock
		var chunk []byte
		if lo < len(data) {
			hi := lo + payloadPerBlock
			if hi > len(data) {
				hi = len(data)
			}
			chunk = data[lo:hi]
		}
		block := make([]byte, payloadPerBlock+2)
		binary.LittleEndian.PutUint16(block[:2], uint16(len(chunk)))
		copy(block[2:], chunk)
		if _, err := fs.ring.Write(chunkID(name, i), block); err != nil {
			return err
		}
	}
	return nil
}

// Get fetches a file; like Put it always performs chunksPerFile ORAM
// reads.
func (fs *fileStore) Get(name string) ([]byte, error) {
	var out bytes.Buffer
	for i := 0; i < chunksPerFile; i++ {
		block, _, err := fs.ring.Read(chunkID(name, i))
		if err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint16(block[:2])
		if int(n) > payloadPerBlock {
			return nil, fmt.Errorf("corrupt chunk %d of %q", i, name)
		}
		out.Write(block[2 : 2+n])
	}
	return out.Bytes(), nil
}

func main() {
	key := []byte("filestore-key16!")
	fs, err := newFileStore(key)
	if err != nil {
		log.Fatal(err)
	}

	files := map[string]string{
		"/etc/motd":        "All your accesses are hidden.",
		"/home/a/notes":    strings.Repeat("secret plans. ", 20),
		"/home/b/todo.txt": "1. reproduce HPCA'21\n2. profit",
	}
	for name, content := range files {
		if err := fs.Put(name, []byte(content)); err != nil {
			log.Fatal(err)
		}
	}

	got, err := fs.Get("/home/a/notes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes of /home/a/notes: %q...\n", len(got), got[:26])

	// Every file operation is the same fixed number of ORAM accesses.
	s := fs.ring.Stats()
	fmt.Printf("bus profile so far: %d read paths, %d evictions (uniform %d accesses per file op)\n",
		s.ReadPaths, s.EvictPaths, chunksPerFile)

	// Checkpoint the whole store and resume it.
	var snap bytes.Buffer
	if err := fs.ring.Save(&snap); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheckpointed the store: %d bytes (sealed blocks + metadata)\n", snap.Len())

	ring2, err := stringoram.LoadRing(&snap, key)
	if err != nil {
		log.Fatal(err)
	}
	fs2 := &fileStore{ring: ring2}
	got2, err := fs2.Get("/home/b/todo.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after restore, /home/b/todo.txt = %q\n", got2)
	fmt.Println("the restored controller continues the exact op stream — deterministic resume")
}
