// Schemes: run one memory-intensive workload (SPEC libquantum's profile
// from the paper's Table IV) through the full cycle-accurate system
// under all four configurations of the paper's Fig. 10 — baseline Ring
// ORAM, Compact Bucket only, Proactive Bank only, and full String ORAM —
// and print the comparison the paper's evaluation centers on.
//
// Run with: go run ./examples/schemes
package main

import (
	"fmt"
	"log"

	"stringoram"
)

func main() {
	profile, err := stringoram.WorkloadByName("libq")
	if err != nil {
		log.Fatal(err)
	}
	tr, err := stringoram.GenerateTrace(profile, 8000, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d accesses, MPKI %.1f (paper: %.1f)\n\n",
		tr.Name, len(tr.Records), tr.MPKI(), profile.MPKI)

	base := stringoram.DefaultConfig()
	base.ORAM.Levels = 16 // laptop-sized tree; the path length still dominates

	type scheme struct {
		name string
		sys  stringoram.SystemConfig
	}
	schemes := []scheme{
		{"Baseline (Ring ORAM)", base.WithCBRate(0)},
		{"CB  (compact bucket)", base.WithCBRate(8)},
		{"PB  (proactive bank)", base.WithCBRate(0).WithScheduler(stringoram.SchedProactiveBank)},
		{"ALL (String ORAM)   ", base.WithCBRate(8).WithScheduler(stringoram.SchedProactiveBank)},
	}

	var baseCycles int64
	fmt.Println("scheme                  cycles      norm   bank-idle  rd-conflict  early-ACT")
	for i, s := range schemes {
		res, err := stringoram.Simulate(s.sys, tr, stringoram.SimOptions{MaxAccesses: 1000})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseCycles = res.Cycles
		}
		fmt.Printf("%s  %9d   %.3f      %4.1f%%       %4.1f%%      %4.1f%%\n",
			s.name, res.Cycles, float64(res.Cycles)/float64(baseCycles),
			100*res.BankIdle,
			100*res.Sched.ConflictRate(0), // read-path tag
			100*res.Sched.EarlyACTFrac())
	}
	fmt.Println("\npaper reference (avg over suite): CB 0.883, PB 0.811, ALL 0.700 normalized time")
}
