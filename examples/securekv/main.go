// Securekv: an oblivious key-value store built on the String ORAM
// library. Keys hash to block IDs; values are fixed-size records sealed
// inside ORAM blocks. An adversary watching the (simulated) memory bus
// sees only fixed-shape ORAM transactions — never which key was touched,
// whether it was a read or a write, or whether two operations addressed
// the same key. This is the searchable-encryption-style scenario the
// paper's introduction motivates.
//
// Run with: go run ./examples/securekv
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"

	"stringoram"
)

// kvStore maps string keys to short byte values through an ORAM.
type kvStore struct {
	ring      *stringoram.Ring
	blockSize int
}

// newKVStore builds the store over a functional Ring ORAM.
func newKVStore(levels int, key []byte) (*kvStore, error) {
	cfg := stringoram.DefaultConfig().ORAM
	cfg.Levels = levels
	cfg.TreeTopCacheLevels = 3
	ring, err := stringoram.NewFunctionalRing(cfg, 2026, key)
	if err != nil {
		return nil, err
	}
	return &kvStore{ring: ring, blockSize: cfg.BlockSize}, nil
}

// blockFor hashes a key into the ORAM's block-address space.
func (kv *kvStore) blockFor(key string) stringoram.BlockID {
	h := fnv.New64a()
	h.Write([]byte(key))
	// Keep IDs positive and inside a 2^20-block namespace.
	return stringoram.BlockID(h.Sum64() & 0xFFFFF)
}

// Put stores a value (at most blockSize-2 bytes) under a key.
func (kv *kvStore) Put(key string, value []byte) error {
	if len(value) > kv.blockSize-2 {
		return fmt.Errorf("value too large: %d bytes", len(value))
	}
	block := make([]byte, kv.blockSize)
	binary.LittleEndian.PutUint16(block[:2], uint16(len(value)))
	copy(block[2:], value)
	_, err := kv.ring.Write(kv.blockFor(key), block)
	return err
}

// Get fetches the value stored under a key ("" for absent keys).
func (kv *kvStore) Get(key string) ([]byte, error) {
	block, _, err := kv.ring.Read(kv.blockFor(key))
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint16(block[:2])
	if int(n) > kv.blockSize-2 {
		return nil, fmt.Errorf("corrupt record for %q", key)
	}
	// block aliases controller scratch — reused by the next access on a
	// serial ring, and recycled at slot retirement under the concurrent
	// controller — so hand the caller an owned copy.
	return append([]byte(nil), block[2:2+n]...), nil
}

func main() {
	kv, err := newKVStore(13, []byte("kv-demo-key-16b!"))
	if err != nil {
		log.Fatal(err)
	}

	patients := map[string]string{
		"patient/1001": "diagnosis=hypertension",
		"patient/1002": "diagnosis=diabetes",
		"patient/1003": "diagnosis=asthma",
		"patient/1004": "diagnosis=migraine",
	}
	for k, v := range patients {
		if err := kv.Put(k, []byte(v)); err != nil {
			log.Fatal(err)
		}
	}

	// Access one record repeatedly — the classic pattern-leakage case:
	// without ORAM, an observer learns that patient/1002's record is
	// "hot". With ORAM, each access touches a fresh random path.
	for i := 0; i < 5; i++ {
		v, err := kv.Get("patient/1002")
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("patient/1002 -> %s\n", v)
		}
	}

	if v, err := kv.Get("patient/9999"); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("patient/9999 -> %q (absent keys return empty, with identical bus behaviour)\n", v)
	}

	s := kv.ring.Stats()
	fmt.Printf("\nafter %d logical requests the bus saw:\n", s.Reads+s.Writes)
	fmt.Printf("  %d read-path transactions (1 block/bucket/level)\n", s.ReadPaths)
	fmt.Printf("  %d eviction transactions (every A=%d accesses, deterministic)\n",
		s.EvictPaths, kv.ring.Config().A)
	fmt.Printf("  %d early reshuffles, %d green-block fetches\n", s.EarlyReshuffles, s.GreenFetches)
	fmt.Println("every transaction has a fixed, data-independent shape — the 'hot' record is invisible")
}
