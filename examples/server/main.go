// Server: the in-process serving layer under concurrent load. A
// 4-shard ORAM key-value server (each shard one Ring confined to one
// goroutine) absorbs 1000 concurrent gets and puts from 64 workers;
// backpressure (queue-full) is surfaced as a typed retryable error,
// never a silent drop, so every acknowledged write is verified readable
// afterwards. Finishes by printing the live metrics snapshot —
// throughput, batch shape, queue depths, and p50/p95/p99 latency.
//
// Run with: go run ./examples/server
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"stringoram"
)

func main() {
	cfg := stringoram.DefaultServerConfig()
	cfg.Shards = 4
	cfg.ORAM = stringoram.DefaultServerORAM(10)
	cfg.Seed = 2026
	srv, err := stringoram.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	const (
		workers = 64
		ops     = 1000 // 500 puts + 500 gets
	)
	var (
		wg     sync.WaitGroup
		misses atomic.Int64
		failed atomic.Int64
	)
	// Backpressure (ErrBacklog/ErrDeadline) is absorbed by the policy's
	// exponential backoff instead of a hand-rolled spin loop.
	retry := stringoram.ServerRetryPolicy{MaxAttempts: 100}
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				key := fmt.Sprintf("user-%04d", i)
				var err error
				if i%2 == 0 { // even jobs write, odd jobs read
					val := fmt.Sprintf("profile-%d", i)
					err = retry.Do(func() error { return srv.Put(key, []byte(val)) })
				} else {
					err = retry.Do(func() error {
						_, found, gerr := srv.Get(key)
						if gerr == nil && !found {
							misses.Add(1) // reader raced ahead of the writer
						}
						return gerr
					})
				}
				if err != nil {
					failed.Add(1)
				}
			}
		}()
	}
	for i := 0; i < ops; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if failed.Load() > 0 {
		log.Fatalf("%d operations failed", failed.Load())
	}
	// Every acknowledged write must be readable.
	for i := 0; i < ops; i += 2 {
		key := fmt.Sprintf("user-%04d", i)
		want := fmt.Sprintf("profile-%d", i)
		got, found, err := srv.Get(key)
		if err != nil || !found || string(got) != want {
			log.Fatalf("lost write %s: got %q found=%v err=%v", key, got, found, err)
		}
	}

	m := srv.Metrics()
	fmt.Printf("%d workers, %d ops (%d backpressure rejections absorbed, %d racing-read misses)\n",
		workers, ops, m.Rejected+m.Expired, misses.Load())
	fmt.Printf("all %d acknowledged writes verified readable\n", ops/2)
	fmt.Printf("shards=%d keys=%d gets=%d puts=%d\n", m.Shards, m.Keys, m.Gets, m.Puts)
	fmt.Printf("throughput %.0f req/s, batches=%d avg=%.2f max=%d\n",
		m.ThroughputPerSecond(), m.Batches, m.AvgBatch, m.MaxBatch)
	fmt.Printf("ORAM accesses=%d slot accesses=%d\n", m.ORAMAccesses, m.SlotAccesses)
	fmt.Printf("latency p50=%.3fms p95=%.3fms p99=%.3fms (%d samples)\n",
		m.P50Seconds*1e3, m.P95Seconds*1e3, m.P99Seconds*1e3, m.LatencySamples)
}
