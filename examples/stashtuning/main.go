// Stashtuning: explore the Compact Bucket rate / stash size tradeoff the
// paper studies in Fig. 13-15. Aggressive CB rates (large Y) save the
// most memory but pull extra "green" real blocks into the stash on every
// read path; with a small stash that triggers leakage-free background
// evictions, and in the extreme the controller reports ErrStashOverflow
// instead of leaking or corrupting. This example sweeps the space and
// shows where each regime begins.
//
// Run with: go run ./examples/stashtuning
package main

import (
	"errors"
	"fmt"
	"log"

	"stringoram"
)

func main() {
	// A deliberately hostile workload: write-heavy with a hot set, so
	// green blocks accumulate in the stash.
	prof := stringoram.TraceProfile{
		Name: "hot-writes", MPKI: 20, WriteFrac: 0.5,
		FootprintBytes: 16 << 20, StreamFrac: 0.1, ZipfTheta: 0.5, Streams: 2,
	}
	tr, err := stringoram.GenerateTrace(prof, 6000, 99)
	if err != nil {
		log.Fatal(err)
	}

	base := stringoram.DefaultConfig()
	base.ORAM.Levels = 14
	base.ORAM.TreeTopCacheLevels = 4

	// The paper runs 500M-instruction SimPoints against a 500-block
	// stash; at this example's scale the same crossover appears with a
	// proportionally smaller stash.
	fmt.Println("stash   Y   slots/bkt  space-saved   bg-evicts  bg-dummy-reads  stash-peak  outcome")
	for _, stash := range []int{12, 16, 24, 60} {
		for _, y := range []int{0, 4, 8} {
			sys := base.WithCBRate(y).WithStashSize(stash)
			o := sys.ORAM
			res, err := stringoram.Simulate(sys, tr, stringoram.SimOptions{MaxAccesses: 1500})
			outcome := "ok"
			var bgE, bgD, peak int64
			if err != nil {
				if errors.Is(err, stringoram.ErrStashOverflow) {
					outcome = "STASH OVERFLOW (Y too aggressive for this stash)"
				} else {
					log.Fatal(err)
				}
			} else {
				bgE, bgD, peak = res.ORAM.BackgroundEvictions, res.ORAM.BackgroundDummyReads, res.ORAM.StashPeak
				if bgE > 0 {
					outcome = "ok, background eviction engaged"
				}
			}
			fmt.Printf("%5d  %2d   %9d  %10.1f%%  %10d  %14d  %10d  %s\n",
				stash, y, o.SlotsPerBucket(),
				100*float64(y)/float64(o.Z+o.S),
				bgE, bgD, peak, outcome)
		}
	}
	fmt.Println("\npaper reference (Fig. 14): stash 200 + Y>=6 starts background evictions;")
	fmt.Println("stash 500 absorbs even Y=8 with none. The stash is still tiny: 500 x 64B = 32KB.")
}
