// Recursive: run a Ring ORAM whose position map is itself stored in
// recursively smaller Ring ORAMs — the configuration a hardware
// controller needs when the flat map does not fit on chip. The example
// shows the cost structure (one extra ORAM access per recursion level)
// and that data still round-trips exactly.
//
// The paper keeps the map on-chip (its Table III setting); this is the
// library's extension for bigger-than-on-chip deployments.
//
// Run with: go run ./examples/recursive
package main

import (
	"fmt"
	"log"

	"stringoram"
)

func main() {
	cfg := stringoram.DefaultConfig().ORAM
	cfg.Levels = 14
	cfg.TreeTopCacheLevels = 4
	cfg.Y = 0 // map levels never use CB; keep the data tree simple too

	const capacity = 1 << 15 // 32k addressable blocks
	rr, err := stringoram.NewRecursiveRing(stringoram.RecursiveConfig{
		Data:         cfg,
		Capacity:     capacity,
		OnChipCutoff: 256,
	}, 7, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("capacity %d blocks, position-map fanout %d labels/block\n", capacity, cfg.BlockSize/8)
	fmt.Printf("recursion levels: %d map ORAMs + on-chip table (cutoff 256 entries)\n\n", rr.Levels())

	// One access, dissected.
	_, ops, err := rr.Access(12345, false, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("operations emitted by ONE logical read:")
	for i, op := range ops {
		fmt.Printf("  %2d. %-16s %2d reads %3d writes\n", i+1, op.Kind, op.Reads(), op.Writes())
	}

	// Amortized cost over a workload.
	const n = 2000
	for i := 0; i < n; i++ {
		if _, _, err := rr.Access(stringoram.BlockID(i*37%capacity), i%3 == 0, nil); err != nil {
			log.Fatal(err)
		}
	}
	rp, ev := rr.TotalOps()
	fmt.Printf("\nover %d accesses: %d read paths, %d evictions across the hierarchy\n", n, rp, ev)
	fmt.Printf("  -> %.2f read paths per logical access (flat map would cost 1.00 + evictions)\n", float64(rp)/float64(n+1))
	fmt.Printf("data ring stash peak %d; on-chip table %d entries\n",
		rr.DataRing().Stats().StashPeak, rr.OnChipEntries())
}
