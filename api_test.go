package stringoram_test

import (
	"bytes"
	"errors"
	"testing"

	"stringoram"
)

// These tests exercise the repository's public facade exactly as an
// importing project would, without touching internal packages directly.

func TestPublicDefaultConfig(t *testing.T) {
	cfg := stringoram.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.ORAM.Z != 8 || cfg.ORAM.Y != 8 {
		t.Fatalf("unexpected defaults: %+v", cfg.ORAM)
	}
}

func TestPublicFunctionalRing(t *testing.T) {
	cfg := stringoram.ScaledConfig(10).ORAM
	ring, err := stringoram.NewFunctionalRing(cfg, 1, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, cfg.BlockSize)
	copy(data, "public api")
	if _, err := ring.Write(9, data); err != nil {
		t.Fatal(err)
	}
	got, ops, err := ring.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
	if len(ops) == 0 {
		t.Fatal("no operations reported")
	}
}

func TestPublicFunctionalRingRejectsBadKey(t *testing.T) {
	cfg := stringoram.ScaledConfig(10).ORAM
	if _, err := stringoram.NewFunctionalRing(cfg, 1, []byte("short")); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestPublicTimingRing(t *testing.T) {
	ring, err := stringoram.NewRing(stringoram.ScaledConfig(10).ORAM, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := ring.Access(stringoram.BlockID(i), i%2 == 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if ring.Stats().ReadPaths != 100 {
		t.Fatalf("ReadPaths = %d", ring.Stats().ReadPaths)
	}
}

func TestPublicPathORAM(t *testing.T) {
	p, err := stringoram.NewPathORAM(4, 8, 64, 200, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Access(1, false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(stringoram.WorkloadSuite()) != 10 {
		t.Fatal("suite size wrong")
	}
	p, err := stringoram.WorkloadByName("libq")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := stringoram.GenerateTrace(p, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1000 {
		t.Fatalf("trace length %d", len(tr.Records))
	}
}

func TestPublicSimulate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	sys := stringoram.ScaledConfig(12)
	p, _ := stringoram.WorkloadByName("black")
	tr, err := stringoram.GenerateTrace(p, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stringoram.Simulate(sys, tr, stringoram.SimOptions{MaxAccesses: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.ORAMAccesses == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestPublicSchedulerKinds(t *testing.T) {
	sys := stringoram.DefaultConfig().WithScheduler(stringoram.SchedProactiveBank)
	if sys.Scheduler != stringoram.SchedProactiveBank {
		t.Fatal("WithScheduler did not apply")
	}
}

func TestPublicRecursiveRing(t *testing.T) {
	cfg := stringoram.ScaledConfig(12).ORAM
	cfg.Y = 0
	rr, err := stringoram.NewRecursiveRing(stringoram.RecursiveConfig{
		Data: cfg, Capacity: 2048, OnChipCutoff: 64,
	}, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Levels() == 0 {
		t.Fatal("expected at least one recursion level")
	}
	if _, _, err := rr.Access(100, true, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublicStashOverflowSurfaces(t *testing.T) {
	cfg := stringoram.ScaledConfig(8).ORAM
	cfg.Levels = 3
	cfg.TreeTopCacheLevels = 0
	cfg.StashSize = 12
	ring, err := stringoram.NewRing(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sawOverflow bool
	for i := 0; i < 300; i++ {
		if _, _, err := ring.Access(stringoram.BlockID(i), true, nil); err != nil {
			if errors.Is(err, stringoram.ErrStashOverflow) {
				sawOverflow = true
				break
			}
			t.Fatal(err)
		}
	}
	if !sawOverflow {
		t.Fatal("overfull tiny tree never reported ErrStashOverflow")
	}
}

func TestPublicExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments in -short mode")
	}
	scale := stringoram.QuickScale()
	scale.Accesses = 100
	scale.TraceLen = 1500
	scale.Levels = 10
	r := stringoram.NewExperiments(scale)
	tb, err := r.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() == 0 {
		t.Fatal("empty figure")
	}
}

// TestPublicSnapshotRoundTrip exercises the persistence path through
// the facade alone (the same API cmd/oramd uses): write through a
// functional ring, Save, LoadRing, and verify both the restored data
// and that the restored ring keeps serving accesses.
func TestPublicSnapshotRoundTrip(t *testing.T) {
	key := []byte("0123456789abcdef")
	cfg := stringoram.ScaledConfig(10).ORAM
	ring, err := stringoram.NewFunctionalRing(cfg, 11, key)
	if err != nil {
		t.Fatal(err)
	}
	blocks := map[stringoram.BlockID]string{3: "alpha", 17: "beta", 29: "gamma"}
	for id, s := range blocks {
		data := make([]byte, cfg.BlockSize)
		copy(data, s)
		if _, err := ring.Write(id, data); err != nil {
			t.Fatal(err)
		}
	}

	var snap bytes.Buffer
	if err := ring.Save(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := stringoram.LoadRing(bytes.NewReader(snap.Bytes()), key)
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range blocks {
		want := make([]byte, cfg.BlockSize)
		copy(want, s)
		got, _, err := restored.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d after restore = %q, want %q", id, got, want)
		}
	}
	// The restored ring must keep serving: a fresh write and read-back.
	data := make([]byte, cfg.BlockSize)
	copy(data, "post-restore")
	if _, err := restored.Write(41, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := restored.Read(41)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("post-restore write corrupted")
	}
	// The checkpoint is sealed: loading without a key is refused.
	if _, err := stringoram.LoadRing(bytes.NewReader(snap.Bytes()), nil); err == nil {
		t.Fatal("sealed checkpoint loaded without a key")
	}
}

// TestPublicServer drives the serving facade end to end: in-process
// puts/gets, typed backpressure classification, metrics, and the
// snapshot directory round trip across a simulated restart.
func TestPublicServer(t *testing.T) {
	dir := t.TempDir()
	cfg := stringoram.DefaultServerConfig()
	cfg.Shards = 2
	cfg.ORAM = stringoram.DefaultServerORAM(8)
	cfg.Seed = 5
	cfg.SnapshotDir = dir
	srv, err := stringoram.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Put("paper", []byte("hpca21")); err != nil {
		t.Fatal(err)
	}
	v, found, err := srv.Get("paper")
	if err != nil || !found || string(v) != "hpca21" {
		t.Fatalf("Get = %q found=%v err=%v", v, found, err)
	}
	if m := srv.Metrics(); m.Puts != 1 || m.Gets != 1 || m.Shards != 2 {
		t.Fatalf("metrics: %+v", m)
	}
	if stringoram.RetryableServerError(stringoram.ErrServerClosed) ||
		!stringoram.RetryableServerError(stringoram.ErrServerBacklog) ||
		!stringoram.RetryableServerError(stringoram.ErrServerDeadline) {
		t.Fatal("retryable classification wrong through facade")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(srv.Put("x", []byte("y")), stringoram.ErrServerClosed) {
		t.Fatal("post-Close put not ErrServerClosed")
	}

	srv2, err := stringoram.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	v, found, err = srv2.Get("paper")
	if err != nil || !found || string(v) != "hpca21" {
		t.Fatalf("after restart Get = %q found=%v err=%v", v, found, err)
	}
}
