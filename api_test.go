package stringoram_test

import (
	"bytes"
	"errors"
	"testing"

	"stringoram"
)

// These tests exercise the repository's public facade exactly as an
// importing project would, without touching internal packages directly.

func TestPublicDefaultConfig(t *testing.T) {
	cfg := stringoram.DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.ORAM.Z != 8 || cfg.ORAM.Y != 8 {
		t.Fatalf("unexpected defaults: %+v", cfg.ORAM)
	}
}

func TestPublicFunctionalRing(t *testing.T) {
	cfg := stringoram.ScaledConfig(10).ORAM
	ring, err := stringoram.NewFunctionalRing(cfg, 1, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, cfg.BlockSize)
	copy(data, "public api")
	if _, err := ring.Write(9, data); err != nil {
		t.Fatal(err)
	}
	got, ops, err := ring.Read(9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
	if len(ops) == 0 {
		t.Fatal("no operations reported")
	}
}

func TestPublicFunctionalRingRejectsBadKey(t *testing.T) {
	cfg := stringoram.ScaledConfig(10).ORAM
	if _, err := stringoram.NewFunctionalRing(cfg, 1, []byte("short")); err == nil {
		t.Fatal("bad key accepted")
	}
}

func TestPublicTimingRing(t *testing.T) {
	ring, err := stringoram.NewRing(stringoram.ScaledConfig(10).ORAM, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, _, err := ring.Access(stringoram.BlockID(i), i%2 == 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if ring.Stats().ReadPaths != 100 {
		t.Fatalf("ReadPaths = %d", ring.Stats().ReadPaths)
	}
}

func TestPublicPathORAM(t *testing.T) {
	p, err := stringoram.NewPathORAM(4, 8, 64, 200, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Access(1, false, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(stringoram.WorkloadSuite()) != 10 {
		t.Fatal("suite size wrong")
	}
	p, err := stringoram.WorkloadByName("libq")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := stringoram.GenerateTrace(p, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1000 {
		t.Fatalf("trace length %d", len(tr.Records))
	}
}

func TestPublicSimulate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	sys := stringoram.ScaledConfig(12)
	p, _ := stringoram.WorkloadByName("black")
	tr, err := stringoram.GenerateTrace(p, 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := stringoram.Simulate(sys, tr, stringoram.SimOptions{MaxAccesses: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.ORAMAccesses == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

func TestPublicSchedulerKinds(t *testing.T) {
	sys := stringoram.DefaultConfig().WithScheduler(stringoram.SchedProactiveBank)
	if sys.Scheduler != stringoram.SchedProactiveBank {
		t.Fatal("WithScheduler did not apply")
	}
}

func TestPublicRecursiveRing(t *testing.T) {
	cfg := stringoram.ScaledConfig(12).ORAM
	cfg.Y = 0
	rr, err := stringoram.NewRecursiveRing(stringoram.RecursiveConfig{
		Data: cfg, Capacity: 2048, OnChipCutoff: 64,
	}, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Levels() == 0 {
		t.Fatal("expected at least one recursion level")
	}
	if _, _, err := rr.Access(100, true, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublicStashOverflowSurfaces(t *testing.T) {
	cfg := stringoram.ScaledConfig(8).ORAM
	cfg.Levels = 3
	cfg.TreeTopCacheLevels = 0
	cfg.StashSize = 12
	ring, err := stringoram.NewRing(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	var sawOverflow bool
	for i := 0; i < 300; i++ {
		if _, _, err := ring.Access(stringoram.BlockID(i), true, nil); err != nil {
			if errors.Is(err, stringoram.ErrStashOverflow) {
				sawOverflow = true
				break
			}
			t.Fatal(err)
		}
	}
	if !sawOverflow {
		t.Fatal("overfull tiny tree never reported ErrStashOverflow")
	}
}

func TestPublicExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments in -short mode")
	}
	scale := stringoram.QuickScale()
	scale.Accesses = 100
	scale.TraceLen = 1500
	scale.Levels = 10
	r := stringoram.NewExperiments(scale)
	tb, err := r.Fig5b()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() == 0 {
		t.Fatal("empty figure")
	}
}
