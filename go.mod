module stringoram

go 1.22
